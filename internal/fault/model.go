package fault

import (
	"fmt"
	"strings"
)

// ModelKind names a fault model family.
type ModelKind uint8

const (
	// ModelCrash is the source paper's model: faulty robots never
	// announce, so the first announcement is trustworthy and detection
	// happens at the first reliable visit.
	ModelCrash ModelKind = iota
	// ModelByzantine is the lying-robots model of arXiv:1611.08209:
	// faulty robots may stay silent or issue false claims, so a claim is
	// accepted only once Votes distinct robots have made it.
	ModelByzantine
	// ModelPFaulty is the probabilistic model of arXiv:2002.07797: every
	// robot outside the (optional) crash budget is p-faulty — each visit
	// of the target independently fails to detect it with probability P —
	// and the objective becomes expected detection time instead of the
	// worst-case competitive ratio. The worst-case projection of the
	// model (all coins fail for the F budgeted robots, succeed at first
	// chance for the rest) coincides with the crash model, so
	// DetectionRank stays F+1 and deterministic kernels remain usable as
	// the P = 0 skeleton.
	ModelPFaulty
)

// String returns the canonical model-family name.
func (mk ModelKind) String() string {
	switch mk {
	case ModelCrash:
		return "crash"
	case ModelByzantine:
		return "byzantine"
	case ModelPFaulty:
		return "pfaulty"
	default:
		return fmt.Sprintf("ModelKind(%d)", uint8(mk))
	}
}

// Model is a fault model instance: the family, the fault budget f, and
// (for Byzantine models) the vote threshold of the detection rule.
type Model struct {
	Kind ModelKind
	// F is the fault budget: at most F robots are faulty.
	F int
	// Votes is the number of distinct truthful "target found" claims the
	// Byzantine detection rule requires before accepting a position as
	// the target. Zero selects the sound default F+1 — the smallest
	// threshold the F possible liars cannot fabricate on their own.
	// Crash models ignore it (one truthful claim suffices: nobody lies).
	Votes int
	// P is the per-visit detection-failure probability of the
	// probabilistic model (ModelPFaulty): each visit of the target by a
	// p-faulty robot independently misses it with probability P. Must
	// lie in [0, 1); other model families ignore it.
	P float64
}

// CrashModel returns the crash model at budget f.
func CrashModel(f int) Model { return Model{Kind: ModelCrash, F: f} }

// ByzantineModel returns the Byzantine model at budget f with the
// given vote threshold (0 selects the default f+1).
func ByzantineModel(f, votes int) Model {
	return Model{Kind: ModelByzantine, F: f, Votes: votes}
}

// PFaultyModel returns the probabilistic model at crash budget f with
// per-visit detection-failure probability p: up to f robots may be fully
// faulty (crash), every other robot misses each visit independently with
// probability p. f = 0 is the pure model of arXiv:2002.07797.
func PFaultyModel(f int, p float64) Model {
	return Model{Kind: ModelPFaulty, F: f, P: p}
}

// VotesRequired returns the number of distinct truthful claims the
// detection rule waits for: 1 in the crash model, the explicit (or
// default f+1) threshold in the Byzantine model.
func (m Model) VotesRequired() int {
	if m.Kind != ModelByzantine {
		return 1
	}
	if m.Votes > 0 {
		return m.Votes
	}
	return m.F + 1
}

// DetectionRank returns the worst-case detection rank: the index k such
// that a target is guaranteed found at the k-th distinct robot visit.
// The adversary silences its F faulty robots among the earliest
// visitors, so the VotesRequired-th truthful claim arrives with the
// (F + VotesRequired)-th distinct visitor. In the crash model this is
// the familiar f+1; in the default Byzantine model it is 2f+1.
func (m Model) DetectionRank() int { return m.F + m.VotesRequired() }

// Admits reports whether the model's adversary may assign kind k to a
// faulty robot.
func (m Model) Admits(k Kind) bool {
	switch m.Kind {
	case ModelCrash:
		return k == Crash
	case ModelByzantine:
		return k == ByzantineSilent || k == ByzantineLiar
	case ModelPFaulty:
		// The budget buys full crashes; p-faultiness is ambient (every
		// robot outside the budget carries it), so an explicit PFaulty
		// entry is admitted too.
		return k == Crash || k == PFaulty
	default:
		return false
	}
}

// FaultyKinds lists the kinds the model's adversary can assign.
func (m Model) FaultyKinds() []Kind {
	switch m.Kind {
	case ModelCrash:
		return []Kind{Crash}
	case ModelByzantine:
		return []Kind{ByzantineSilent, ByzantineLiar}
	case ModelPFaulty:
		return []Kind{Crash, PFaulty}
	default:
		return nil
	}
}

// WorstKind returns the kind the worst-case adversary assigns to delay
// detection of the true target: silence. A liar delays detection
// exactly as much as a silent robot (neither confirms the target), but
// silence is the canonical choice because it is also valid in the
// crash model.
func (m Model) WorstKind() Kind {
	if m.Kind == ModelByzantine {
		return ByzantineSilent
	}
	return Crash
}

// Validate checks the model against a fleet of n robots: the budget
// must satisfy 0 <= F < n, an explicit vote threshold must be at least
// 1, and the detection rank must not exceed n — otherwise no plan over
// n robots can ever guarantee detection.
func (m Model) Validate(n int) error {
	if m.Kind != ModelCrash && m.Kind != ModelByzantine && m.Kind != ModelPFaulty {
		return fmt.Errorf("fault: unknown model kind %d", uint8(m.Kind))
	}
	if m.F < 0 || m.F >= n {
		return fmt.Errorf("fault: fault budget f=%d out of range [0, %d)", m.F, n)
	}
	if m.Kind == ModelByzantine && m.Votes < 0 {
		return fmt.Errorf("fault: vote threshold must be positive, got %d", m.Votes)
	}
	if m.Kind == ModelPFaulty && !(m.P >= 0 && m.P < 1) {
		return fmt.Errorf("fault: detection-failure probability p=%v outside [0, 1)", m.P)
	}
	if rank := m.DetectionRank(); rank > n {
		return fmt.Errorf("fault: %s needs at least %d robots (detection rank f+votes), got n=%d", m, rank, n)
	}
	return nil
}

// AmbientSet returns the model's ambient assignment over n robots with
// the given robots consumed from the fault budget. In the probabilistic
// model every robot outside the budget is p-faulty and the budgeted
// robots crash; in the deterministic models the budgeted robots get
// WorstKind and everyone else is reliable.
func (m Model) AmbientSet(n int, faulty ...int) Set {
	set := make(Set, n)
	if m.Kind == ModelPFaulty {
		for i := range set {
			set[i] = PFaulty
		}
	}
	for _, i := range faulty {
		if i >= 0 && i < n {
			set[i] = m.WorstKind()
		}
	}
	return set
}

// WithF returns the model with a different fault budget. An explicit
// vote threshold is preserved; the default threshold keeps tracking the
// new budget.
func (m Model) WithF(f int) Model {
	m.F = f
	return m
}

// String formats the model for logs and errors: "crash(f=2)" or
// "byzantine(f=2,votes=3)".
func (m Model) String() string {
	var b strings.Builder
	b.WriteString(m.Kind.String())
	fmt.Fprintf(&b, "(f=%d", m.F)
	if m.Kind == ModelByzantine {
		fmt.Fprintf(&b, ",votes=%d", m.VotesRequired())
	}
	if m.Kind == ModelPFaulty {
		fmt.Fprintf(&b, ",p=%g", m.P)
	}
	b.WriteByte(')')
	return b.String()
}
