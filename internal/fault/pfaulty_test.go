package fault

import (
	"strings"
	"testing"
)

func TestStochasticKindNames(t *testing.T) {
	cases := []struct {
		kind Kind
		name string
	}{
		{PFaulty, "pfaulty"},
		{Delay, "delay"},
	}
	for _, c := range cases {
		if got := c.kind.String(); got != c.name {
			t.Errorf("%d.String() = %q, want %q", c.kind, got, c.name)
		}
		parsed, err := ParseKind(c.name)
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", c.name, err)
		}
		if parsed != c.kind {
			t.Errorf("ParseKind(%q) = %v, want %v", c.name, parsed, c.kind)
		}
		if !c.kind.Faulty() {
			t.Errorf("%v.Faulty() = false, want true", c.kind)
		}
		if c.kind.Confirms() {
			t.Errorf("%v.Confirms() = true, want false (worst case)", c.kind)
		}
		if !c.kind.Stochastic() {
			t.Errorf("%v.Stochastic() = false, want true", c.kind)
		}
	}
	for _, k := range []Kind{Reliable, Crash, ByzantineSilent, ByzantineLiar} {
		if k.Stochastic() {
			t.Errorf("%v.Stochastic() = true, want false", k)
		}
	}
}

func TestPFaultyModel(t *testing.T) {
	m := PFaultyModel(1, 0.3)
	if m.Kind != ModelPFaulty || m.F != 1 || m.P != 0.3 {
		t.Fatalf("PFaultyModel(1, 0.3) = %+v", m)
	}
	if err := m.Validate(3); err != nil {
		t.Fatalf("Validate(3): %v", err)
	}
	if got := m.VotesRequired(); got != 1 {
		t.Errorf("VotesRequired() = %d, want 1 (first truthful claim is trusted)", got)
	}
	if got := m.DetectionRank(); got != 2 {
		t.Errorf("DetectionRank() = %d, want f+1 = 2", got)
	}
	if got := m.WorstKind(); got != Crash {
		t.Errorf("WorstKind() = %v, want Crash", got)
	}
	if !m.Admits(Crash) || !m.Admits(PFaulty) {
		t.Errorf("pfaulty model must admit crash and pfaulty kinds")
	}
	if m.Admits(ByzantineLiar) || m.Admits(Delay) {
		t.Errorf("pfaulty model must not admit byzantine or delay kinds")
	}
	if got := m.String(); !strings.Contains(got, "pfaulty(f=1,p=0.3") {
		t.Errorf("String() = %q, want pfaulty(f=1,p=0.3)", got)
	}
}

func TestPFaultyModelValidateRejectsBadP(t *testing.T) {
	for _, p := range []float64{-0.1, 1, 1.5, nan()} {
		m := PFaultyModel(0, p)
		if err := m.Validate(2); err == nil {
			t.Errorf("Validate accepted p=%v", p)
		}
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

func TestPFaultySetValidation(t *testing.T) {
	m := PFaultyModel(1, 0.25)
	set := Set{Crash, PFaulty, Reliable}
	// PFaulty entries are ambient, but still count as faulty for the
	// budget check: Crash + PFaulty = 2 > f = 1.
	if err := set.Validate(3, m); err == nil {
		t.Fatalf("Validate accepted 2 faulty entries over budget 1")
	}
	set = Set{Crash, Reliable, Reliable}
	if err := set.Validate(3, m); err != nil {
		t.Fatalf("Validate rejected a budget-respecting set: %v", err)
	}
}
