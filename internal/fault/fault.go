// Package fault is the first-class fault taxonomy of the repository:
// what a faulty robot is allowed to do, how concrete fault assignments
// are represented, and which detection rule a search plan must apply to
// be sound against that adversary.
//
// The crash model of the source paper (Czyzowicz et al., PODC 2016) has
// exactly one faulty behaviour: a crash-faulty robot follows its
// trajectory but never announces the target. The Byzantine model
// (Kranakis et al., "Search on a Line by Byzantine Robots",
// arXiv:1611.08209) adds lying: a Byzantine robot may stay silent about
// a target it stands on, or claim "target found" at a position where
// there is none. Soundness then needs a voting rule — a claim is
// accepted only once enough distinct robots have made it that the
// claims cannot all come from liars — instead of trusting the first
// announcement.
//
// The taxonomy is deliberately open-ended: the probabilistically faulty
// model of arXiv:2002.07797 (detection fails with probability p) and
// delay faults slot in as new Kind values without touching the Set and
// Model machinery.
package fault

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind classifies one robot's behaviour.
type Kind uint8

const (
	// Reliable robots follow their trajectory and truthfully announce
	// the target at their first visit.
	Reliable Kind = iota
	// Crash robots follow their trajectory but never announce anything
	// (the source paper's fault model).
	Crash
	// ByzantineSilent robots behave like crash robots — they withhold
	// the true "target found" announcement — but belong to the Byzantine
	// adversary's budget, so the detection rule must vote.
	ByzantineSilent
	// ByzantineLiar robots issue false "target found" claims at
	// positions of the adversary's choosing and never truthfully confirm
	// the real target.
	ByzantineLiar
	// PFaulty robots (arXiv:2002.07797) follow their trajectory and try
	// to announce, but each visit of the target independently fails to
	// detect it with probability p. The parameter p lives in the model
	// (Model.P) or the engine's per-robot spec, not in the kind itself.
	// In worst-case (adversarial-coin) analyses a p-faulty robot never
	// confirms, so Confirms reports false; the stochastic engine in
	// internal/engine draws the per-visit coins.
	PFaulty
	// Delay robots detect the target reliably but report it late: their
	// "target found" claim arrives a latency after the visit. Only the
	// discrete-event engine, which orders claims on an event queue,
	// gives delayed claims their distinct semantics; worst-case analyses
	// treat an unbounded delay as silence.
	Delay

	numKinds = iota
)

// kindNames are the canonical wire names, used by String, ParseKind and
// the service's faulty-robot lists.
var kindNames = [numKinds]string{
	Reliable:        "reliable",
	Crash:           "crash",
	ByzantineSilent: "silent",
	ByzantineLiar:   "liar",
	PFaulty:         "pfaulty",
	Delay:           "delay",
}

// String returns the canonical name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Faulty reports whether the kind counts against a fault budget.
func (k Kind) Faulty() bool { return k != Reliable }

// Byzantine reports whether the kind belongs to the Byzantine
// adversary (it may coordinate silence and lies).
func (k Kind) Byzantine() bool { return k == ByzantineSilent || k == ByzantineLiar }

// Confirms reports whether a robot of this kind truthfully announces a
// target it visits, in the worst case. Only reliable robots do: crash
// and Byzantine-silent robots say nothing, liars never tell the truth,
// a p-faulty robot's coins can all fail, and a delayed claim can arrive
// arbitrarily late. The stochastic engine refines this for PFaulty and
// Delay robots, whose claims are probabilistic or late rather than
// absent.
func (k Kind) Confirms() bool { return k == Reliable }

// Stochastic reports whether the kind's behaviour involves randomness
// or event timing only the discrete-event engine can evaluate: per-visit
// detection coins (PFaulty) or late claims (Delay).
func (k Kind) Stochastic() bool { return k == PFaulty || k == Delay }

// ParseKind resolves a canonical kind name ("reliable", "crash",
// "silent", "liar").
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if s == name {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("fault: unknown fault kind %q (known: %s)", s, strings.Join(kindNames[:], ", "))
}

// Set is a concrete per-robot fault assignment: Set[i] is robot i's
// behaviour. It replaces the raw []bool crash vector that used to
// thread through internal/sim.
type Set []Kind

// FromBools converts a legacy crash vector (true = faulty) into a Set.
// It is the thin compatibility adapter for callers still holding
// []bool assignments.
func FromBools(faulty []bool) Set {
	s := make(Set, len(faulty))
	for i, b := range faulty {
		if b {
			s[i] = Crash
		}
	}
	return s
}

// Bools converts the set back into a legacy crash vector (true for any
// faulty kind). Lossy: the distinction between kinds is dropped.
func (s Set) Bools() []bool {
	out := make([]bool, len(s))
	for i, k := range s {
		out[i] = k.Faulty()
	}
	return out
}

// NumFaulty counts the robots with a non-reliable kind.
func (s Set) NumFaulty() int {
	n := 0
	for _, k := range s {
		if k.Faulty() {
			n++
		}
	}
	return n
}

// Count counts the robots of exactly kind k.
func (s Set) Count(k Kind) int {
	n := 0
	for _, kk := range s {
		if kk == k {
			n++
		}
	}
	return n
}

// Robots returns the indices assigned kind k, in increasing order.
func (s Set) Robots(k Kind) []int {
	var out []int
	for i, kk := range s {
		if kk == k {
			out = append(out, i)
		}
	}
	return out
}

// Clone returns an independent copy.
func (s Set) Clone() Set { return append(Set(nil), s...) }

// String formats the set as "robot:kind" pairs for the faulty robots
// ("2:crash,4:liar"), or "none" for an all-reliable set.
func (s Set) String() string {
	var b strings.Builder
	for i, k := range s {
		if !k.Faulty() {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(i))
		b.WriteByte(':')
		b.WriteString(k.String())
	}
	if b.Len() == 0 {
		return "none"
	}
	return b.String()
}

// Validate checks the set against a fleet of n robots under model m:
// the length must be n, every kind must be one the model admits, and
// the faulty count must not exceed the model's budget.
func (s Set) Validate(n int, m Model) error {
	if len(s) != n {
		return fmt.Errorf("fault: assignment has %d entries for %d robots", len(s), n)
	}
	faulty := 0
	for i, k := range s {
		if int(k) >= numKinds {
			return fmt.Errorf("fault: robot %d has invalid kind %d", i, uint8(k))
		}
		if !k.Faulty() {
			continue
		}
		faulty++
		if !m.Admits(k) {
			return fmt.Errorf("fault: robot %d has kind %s, which the %s model does not admit", i, k, m)
		}
	}
	if faulty > m.F {
		return fmt.Errorf("fault: %d faulty robots exceed the budget f=%d", faulty, m.F)
	}
	return nil
}
