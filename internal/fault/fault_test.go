package fault

import (
	"strings"
	"testing"
)

func TestKindStringAndParse(t *testing.T) {
	for _, k := range []Kind{Reliable, Crash, ByzantineSilent, ByzantineLiar} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
	if _, err := ParseKind("nonsense"); err == nil || !strings.Contains(err.Error(), "unknown fault kind") {
		t.Errorf("ParseKind(nonsense) error = %v", err)
	}
}

func TestKindPredicates(t *testing.T) {
	cases := []struct {
		k                           Kind
		faulty, byzantine, confirms bool
	}{
		{Reliable, false, false, true},
		{Crash, true, false, false},
		{ByzantineSilent, true, true, false},
		{ByzantineLiar, true, true, false},
	}
	for _, tc := range cases {
		if tc.k.Faulty() != tc.faulty || tc.k.Byzantine() != tc.byzantine || tc.k.Confirms() != tc.confirms {
			t.Errorf("%s: Faulty=%v Byzantine=%v Confirms=%v, want %v %v %v",
				tc.k, tc.k.Faulty(), tc.k.Byzantine(), tc.k.Confirms(), tc.faulty, tc.byzantine, tc.confirms)
		}
	}
}

func TestSetBoolsRoundTrip(t *testing.T) {
	in := []bool{true, false, true, false}
	s := FromBools(in)
	if s.NumFaulty() != 2 || s.Count(Crash) != 2 {
		t.Fatalf("FromBools(%v) = %v", in, s)
	}
	out := s.Bools()
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("Bools round trip: got %v want %v", out, in)
		}
	}
	// Byzantine kinds flatten to true as well.
	s2 := Set{Reliable, ByzantineLiar, ByzantineSilent}
	if got := s2.Bools(); !got[1] || !got[2] || got[0] {
		t.Errorf("Bools(%v) = %v", s2, got)
	}
}

func TestSetRobotsAndString(t *testing.T) {
	s := Set{Reliable, ByzantineLiar, Crash, Reliable, ByzantineLiar}
	liars := s.Robots(ByzantineLiar)
	if len(liars) != 2 || liars[0] != 1 || liars[1] != 4 {
		t.Errorf("Robots(liar) = %v", liars)
	}
	if got := s.String(); got != "1:liar,2:crash,4:liar" {
		t.Errorf("String() = %q", got)
	}
	if got := (Set{Reliable, Reliable}).String(); got != "none" {
		t.Errorf("all-reliable String() = %q", got)
	}
}

func TestSetValidate(t *testing.T) {
	m := ByzantineModel(1, 0)
	if err := (Set{Reliable, ByzantineLiar, Reliable}).Validate(3, m); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
	if err := (Set{Reliable, ByzantineLiar}).Validate(3, m); err == nil {
		t.Error("wrong-length set accepted")
	}
	if err := (Set{Crash, Reliable, Reliable}).Validate(3, m); err == nil {
		t.Error("crash kind accepted by byzantine model")
	}
	if err := (Set{ByzantineLiar, ByzantineSilent, Reliable}).Validate(3, m); err == nil {
		t.Error("over-budget set accepted")
	}
	if err := (Set{ByzantineLiar, Reliable, Reliable}).Validate(3, CrashModel(1)); err == nil {
		t.Error("byzantine kind accepted by crash model")
	}
}

func TestModelVotesAndRank(t *testing.T) {
	cases := []struct {
		m           Model
		votes, rank int
	}{
		{CrashModel(0), 1, 1},
		{CrashModel(2), 1, 3},
		{ByzantineModel(1, 0), 2, 3},
		{ByzantineModel(2, 0), 3, 5},
		{ByzantineModel(2, 1), 1, 3},
		{ByzantineModel(1, 3), 3, 4},
	}
	for _, tc := range cases {
		if got := tc.m.VotesRequired(); got != tc.votes {
			t.Errorf("%s VotesRequired = %d, want %d", tc.m, got, tc.votes)
		}
		if got := tc.m.DetectionRank(); got != tc.rank {
			t.Errorf("%s DetectionRank = %d, want %d", tc.m, got, tc.rank)
		}
	}
}

func TestModelValidate(t *testing.T) {
	if err := CrashModel(1).Validate(3); err != nil {
		t.Errorf("crash(f=1) on n=3: %v", err)
	}
	if err := ByzantineModel(1, 0).Validate(3); err != nil {
		t.Errorf("byzantine(f=1) on n=3: %v", err)
	}
	// Default byzantine rank 2f+1 exceeds n.
	if err := ByzantineModel(1, 0).Validate(2); err == nil {
		t.Error("byzantine(f=1) on n=2 accepted")
	}
	if err := CrashModel(3).Validate(3); err == nil {
		t.Error("f=n accepted")
	}
	if err := CrashModel(-1).Validate(3); err == nil {
		t.Error("negative budget accepted")
	}
	if err := ByzantineModel(1, -2).Validate(5); err == nil {
		t.Error("negative votes accepted")
	}
	// Explicit votes push the rank beyond the fleet.
	if err := ByzantineModel(1, 5).Validate(5); err == nil {
		t.Error("rank 6 on n=5 accepted")
	}
}

func TestModelStrings(t *testing.T) {
	if got := CrashModel(2).String(); got != "crash(f=2)" {
		t.Errorf("crash String = %q", got)
	}
	if got := ByzantineModel(2, 0).String(); got != "byzantine(f=2,votes=3)" {
		t.Errorf("byzantine String = %q", got)
	}
	if got := ByzantineModel(2, 1).String(); got != "byzantine(f=2,votes=1)" {
		t.Errorf("byzantine explicit-votes String = %q", got)
	}
}

func TestModelWorstKindAndAdmits(t *testing.T) {
	if CrashModel(1).WorstKind() != Crash {
		t.Error("crash worst kind")
	}
	if ByzantineModel(1, 0).WorstKind() != ByzantineSilent {
		t.Error("byzantine worst kind")
	}
	if kinds := ByzantineModel(1, 0).FaultyKinds(); len(kinds) != 2 {
		t.Errorf("byzantine kinds = %v", kinds)
	}
	if kinds := CrashModel(1).FaultyKinds(); len(kinds) != 1 || kinds[0] != Crash {
		t.Errorf("crash kinds = %v", kinds)
	}
}

func TestModelWithF(t *testing.T) {
	m := ByzantineModel(1, 0).WithF(2)
	if m.F != 2 || m.VotesRequired() != 3 {
		t.Errorf("WithF default votes: %+v votes=%d", m, m.VotesRequired())
	}
	m = ByzantineModel(1, 2).WithF(3)
	if m.VotesRequired() != 2 {
		t.Errorf("WithF explicit votes drifted: %d", m.VotesRequired())
	}
}
