package cluster

import (
	"fmt"
	"net/url"
	"strings"
)

// ValidateBackends checks a backend URL list the way every entry point
// into the ring must: PUT /admin/topology, the router's -backends
// flag, and the membership seed list all reject the same shapes with
// the same reasons. A valid list is non-empty, every URL parses with a
// scheme and host, and no two entries name the same host:port (two
// ring members with one name would silently halve the replica count).
func ValidateBackends(urls []string) error {
	if len(urls) == 0 {
		return fmt.Errorf("cluster: backend list is empty")
	}
	seen := make(map[string]string, len(urls))
	for _, raw := range urls {
		if strings.TrimSpace(raw) == "" {
			return fmt.Errorf("cluster: backend list contains an empty url")
		}
		u, err := url.Parse(raw)
		if err != nil {
			return fmt.Errorf("cluster: backend url %q does not parse: %v", raw, err)
		}
		if u.Scheme != "http" && u.Scheme != "https" {
			return fmt.Errorf("cluster: backend url %q needs an http or https scheme (e.g. http://127.0.0.1:8081)", raw)
		}
		if u.Host == "" {
			return fmt.Errorf("cluster: backend url %q has no host", raw)
		}
		if prev, dup := seen[u.Host]; dup {
			return fmt.Errorf("cluster: backend urls %q and %q both name %s", prev, raw, u.Host)
		}
		seen[u.Host] = raw
	}
	return nil
}
