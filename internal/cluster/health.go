package cluster

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"linesearch/internal/telemetry/journal"
)

// healthLoop probes every backend on the configured cadence until
// Close.
func (r *Router) healthLoop() {
	defer r.wg.Done()
	ticker := time.NewTicker(r.cfg.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
			r.ProbeAll()
		}
	}
}

// ProbeAll runs one health round over every backend. Exported so
// tests (and the health loop) drive rounds deterministically instead
// of sleeping through ticker cadence.
func (r *Router) ProbeAll() {
	r.mu.RLock()
	backends := make([]*backend, 0, len(r.backends))
	for _, b := range r.backends {
		backends = append(backends, b)
	}
	r.mu.RUnlock()
	for _, b := range backends {
		r.probe(b)
	}
}

// probe casts one health vote for b. A vote fails when the /healthz
// probe fails, or when the slow-vote rule trips: the backend's mean
// proxied latency since the last round exceeded SlowThreshold. The
// paper's faulty robot never announces itself — it just stops helping
// — so a shard slow enough to be useless draws the same vote a dead
// one does. Only QuarantineVotes consecutive failed votes quarantine
// the backend (the quorum-style detection rule); any healthy vote
// resets the count and lifts the quarantine.
func (r *Router) probe(b *backend) {
	ok := r.probeOnce(b)
	if ok && r.cfg.SlowThreshold > 0 {
		snap := b.hist.Snapshot()
		dc := snap.Count - b.lastCount
		ds := snap.Sum - b.lastSum
		b.lastCount, b.lastSum = snap.Count, snap.Sum
		if dc > 0 && time.Duration(ds/float64(dc)*float64(time.Second)) > r.cfg.SlowThreshold {
			ok = false
		}
	}
	if ok {
		if b.down.Swap(false) {
			r.logger.Info("backend recovered", "backend", b.name)
			r.journal.Record(context.Background(), journal.QuarantineExit, b.name, "healthy vote")
		}
		b.votes.Store(0)
		return
	}
	b.probeFails.Add(1)
	if int(b.votes.Add(1)) >= r.cfg.QuarantineVotes && !b.down.Swap(true) {
		b.quarantines.Add(1)
		r.logger.Warn("backend quarantined",
			"backend", b.name, "votes", b.votes.Load())
		r.journal.Record(context.Background(), journal.QuarantineEnter, b.name,
			fmt.Sprintf("%d failed votes", b.votes.Load()))
	}
}

// probeOnce issues one GET /healthz against b.
func (r *Router) probeOnce(b *backend) bool {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base.String()+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
