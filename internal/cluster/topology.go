package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"

	"linesearch/internal/service"
)

// SetTopology replaces the backend set. Surviving backends keep their
// breaker state, histograms and counters; new ones start fresh. After
// the ring swap, a warm transfer moves hot plan-cache entries to their
// new owners (see warmTransfer) so the reshaped fleet serves its keys
// without recompiling them. Transfer failures are logged and counted,
// never fatal: a cold cache is slow, not wrong.
func (r *Router) SetTopology(backendURLs []string) error {
	if err := ValidateBackends(backendURLs); err != nil {
		return err
	}
	next := make(map[string]*backend, len(backendURLs))
	for _, raw := range backendURLs {
		b, err := newBackend(raw, r.cfg.FailureThreshold, r.cfg.BreakerCooldown)
		if err != nil {
			return err
		}
		next[b.name] = b
	}

	r.mu.Lock()
	donors := make([]*backend, 0, len(r.backends))
	for name, old := range r.backends {
		donors = append(donors, old)
		if _, keep := next[name]; keep {
			next[name] = old // preserve breaker/health/telemetry state
		}
	}
	sort.Slice(donors, func(i, j int) bool { return donors[i].name < donors[j].name })
	ring := NewRing(r.cfg.VNodes)
	for name := range next {
		ring.Add(name)
	}
	r.backends = next
	r.ring = ring
	r.mu.Unlock()

	r.logger.Info("topology updated", "backends", ring.Members())
	if r.cfg.WarmKeys >= 0 {
		r.warmTransfer(donors, ring, next)
	}
	return nil
}

// warmTransfer rehomes hot plan-cache entries after a ring swap. Every
// pre-change backend is a donor: its hottest WarmKeys entries are
// exported, the ones whose owner moved are regrouped by new owner, and
// each owner gets a re-sealed sub-snapshot to import. Donors that are
// gone (the backend being removed probably died — that is why it is
// being removed) just cost a failed export; their keys rebuild on
// first miss like any cold key.
func (r *Router) warmTransfer(donors []*backend, ring *Ring, current map[string]*backend) {
	r.warmRuns.Add(1)
	grouped := make(map[string][]service.CacheSnapshotEntry)
	for _, donor := range donors {
		snap, err := r.fetchSnapshot(donor)
		if err != nil {
			r.warmErrors.Add(1)
			r.logger.Warn("warm transfer: export failed", "donor", donor.name, "err", err)
			continue
		}
		for _, e := range snap.Entries {
			owner := ring.Owner(e.Key.Hash())
			if owner == "" || owner == donor.name {
				continue // key stayed home; nothing to move
			}
			grouped[owner] = append(grouped[owner], e)
		}
	}
	for owner, entries := range grouped {
		b := current[owner]
		if b == nil {
			continue
		}
		sub := service.NewCacheSnapshot(entries)
		if err := r.pushSnapshot(b, sub); err != nil {
			r.warmErrors.Add(1)
			r.logger.Warn("warm transfer: import failed", "target", owner, "err", err)
			continue
		}
		r.warmKeys.Add(int64(len(entries)))
		r.logger.Info("warm transfer: entries moved", "target", owner, "entries", len(entries))
	}
}

// fetchSnapshot exports the donor's hottest entries.
func (r *Router) fetchSnapshot(b *backend) (service.CacheSnapshot, error) {
	var snap service.CacheSnapshot
	url := fmt.Sprintf("%s/v1/cache/snapshot?limit=%d", b.base, r.cfg.WarmKeys)
	resp, err := r.client.Get(url)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("export returned %s", resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, r.cfg.MaxResponseBody))
	if err != nil {
		return snap, err
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		return snap, fmt.Errorf("decode export: %w", err)
	}
	return snap, nil
}

// pushSnapshot imports a sealed sub-snapshot into its new owner.
func (r *Router) pushSnapshot(b *backend, snap service.CacheSnapshot) error {
	blob, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPut, b.base.String()+"/v1/cache/snapshot", bytes.NewReader(blob))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("import returned %s: %s", resp.Status, body)
	}
	return nil
}
