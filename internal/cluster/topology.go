package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"linesearch/internal/service"
	"linesearch/internal/telemetry"
	"linesearch/internal/telemetry/journal"
)

// SetTopology replaces the backend set. Surviving backends keep their
// breaker state, histograms and counters; new ones start fresh. After
// the ring swap, a warm transfer moves hot plan-cache entries to their
// new owners (see warmTransfer) so the reshaped fleet serves its keys
// without recompiling them. Transfer failures are logged and counted,
// never fatal: a cold cache is slow, not wrong.
func (r *Router) SetTopology(backendURLs []string) error {
	if err := ValidateBackends(backendURLs); err != nil {
		return err
	}
	next := make(map[string]*backend, len(backendURLs))
	for _, raw := range backendURLs {
		b, err := newBackend(raw, r.cfg.FailureThreshold, r.cfg.BreakerCooldown, r.journal)
		if err != nil {
			return err
		}
		next[b.name] = b
	}

	r.mu.Lock()
	donors := make([]*backend, 0, len(r.backends))
	for name, old := range r.backends {
		donors = append(donors, old)
		if _, keep := next[name]; keep {
			next[name] = old // preserve breaker/health/telemetry state
		}
	}
	sort.Slice(donors, func(i, j int) bool { return donors[i].name < donors[j].name })
	ring := NewRing(r.cfg.VNodes)
	for name := range next {
		ring.Add(name)
	}
	r.backends = next
	r.ring = ring
	r.mu.Unlock()

	r.logger.Info("topology updated", "backends", ring.Members())
	r.journal.Record(context.Background(), journal.TopologyChange, "",
		strings.Join(ring.Members(), ","))
	if r.cfg.WarmKeys >= 0 {
		r.warmTransfer(donors, ring, next)
	}
	return nil
}

// warmTransfer rehomes hot plan-cache entries after a ring swap. Every
// pre-change backend is a donor: its hottest WarmKeys entries are
// exported, the ones whose owner moved are regrouped by new owner, and
// each owner gets a re-sealed sub-snapshot to import. Donors that are
// gone (the backend being removed probably died — that is why it is
// being removed) just cost a failed export; their keys rebuild on
// first miss like any cold key.
func (r *Router) warmTransfer(donors []*backend, ring *Ring, current map[string]*backend) {
	// The transfer gets a root trace of its own: each export and import
	// leg carries its traceparent, so a reshape shows up at
	// /debug/fleet-traces as one trace spanning the router and every
	// donor/recipient shard it touched.
	ctx, span := r.tracer.StartRequest(context.Background(), "warm-transfer", "")
	if span != nil {
		span.SetInt("donors", int64(len(donors)))
		defer span.End()
	}
	r.warmRuns.Add(1)
	grouped := make(map[string][]service.CacheSnapshotEntry)
	for _, donor := range donors {
		snap, err := r.fetchSnapshot(ctx, donor)
		if err != nil {
			r.warmErrors.Add(1)
			r.logger.Warn("warm transfer: export failed", "donor", donor.name, "err", err)
			continue
		}
		for _, e := range snap.Entries {
			owner := ring.Owner(e.Key.Hash())
			if owner == "" || owner == donor.name {
				continue // key stayed home; nothing to move
			}
			grouped[owner] = append(grouped[owner], e)
		}
	}
	for owner, entries := range grouped {
		b := current[owner]
		if b == nil {
			continue
		}
		sub := service.NewCacheSnapshot(entries)
		if err := r.pushSnapshot(ctx, b, sub); err != nil {
			r.warmErrors.Add(1)
			r.logger.Warn("warm transfer: import failed", "target", owner, "err", err)
			continue
		}
		r.warmKeys.Add(int64(len(entries)))
		r.logger.Info("warm transfer: entries moved", "target", owner, "entries", len(entries))
	}
}

// fetchSnapshot exports the donor's hottest entries.
func (r *Router) fetchSnapshot(ctx context.Context, b *backend) (service.CacheSnapshot, error) {
	ctx, span := telemetry.StartSpan(ctx, "snapshot-export")
	if span != nil {
		span.SetStr("donor", b.name)
		defer span.End()
	}
	var snap service.CacheSnapshot
	url := fmt.Sprintf("%s/v1/cache/snapshot?limit=%d", b.base, r.cfg.WarmKeys)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return snap, err
	}
	if tp := telemetry.Traceparent(ctx); tp != "" {
		req.Header.Set("Traceparent", tp)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("export returned %s", resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, r.cfg.MaxResponseBody))
	if err != nil {
		return snap, err
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		return snap, fmt.Errorf("decode export: %w", err)
	}
	return snap, nil
}

// pushSnapshot imports a sealed sub-snapshot into its new owner.
func (r *Router) pushSnapshot(ctx context.Context, b *backend, snap service.CacheSnapshot) error {
	ctx, span := telemetry.StartSpan(ctx, "snapshot-import")
	if span != nil {
		span.SetStr("target", b.name)
		span.SetInt("entries", int64(len(snap.Entries)))
		defer span.End()
	}
	blob, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, b.base.String()+"/v1/cache/snapshot", bytes.NewReader(blob))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if tp := telemetry.Traceparent(ctx); tp != "" {
		req.Header.Set("Traceparent", tp)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("import returned %s: %s", resp.Status, body)
	}
	return nil
}
