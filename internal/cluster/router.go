package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"linesearch/internal/faultpoint"
	"linesearch/internal/service"
	"linesearch/internal/telemetry"
	"linesearch/internal/telemetry/journal"
)

// Fault points in the proxy path. fpForward fires for every attempt;
// a per-backend point named fpForward+"."+<host:port> lets chaos
// schedules kill exactly one shard — the injected error is treated as
// a transport failure, so the retry/failover machinery is exercised
// end to end without real processes dying.
const fpForward = "cluster.forward"

// maxRequestBody bounds a buffered proxied request body; the service
// itself caps batch bodies at 1 MiB, so this is generous.
const maxRequestBody = 8 << 20

// Config tunes the router. The zero value of every field gets a
// sensible default; Backends must name at least one URL.
type Config struct {
	// Backends are the linesearchd base URLs (e.g. http://127.0.0.1:8081).
	Backends []string
	// VNodes is the ring's virtual-node count per backend (default
	// DefaultVNodes).
	VNodes int
	// Attempts bounds the total tries per retryable request, the first
	// included (default 3). Non-idempotent requests always get exactly
	// one attempt: a failed sweep submission must surface, not silently
	// duplicate.
	Attempts int
	// MaxRetryAfter caps how long an honored Retry-After header may
	// cool a backend down (default 5s) — a confused shard must not
	// quarantine itself for an hour.
	MaxRetryAfter time.Duration
	// RetryBackoff is the base sleep before re-trying the same backend
	// (failover to a different backend is immediate); doubled per
	// attempt (default 25ms).
	RetryBackoff time.Duration
	// FailureThreshold and BreakerCooldown tune the per-backend
	// circuit breaker (defaults 3 and 2s).
	FailureThreshold int
	BreakerCooldown  time.Duration
	// HealthInterval is the probe cadence (default 2s; negative
	// disables the background loop — tests drive ProbeAll directly).
	HealthInterval time.Duration
	// HealthTimeout bounds one probe (default 1s).
	HealthTimeout time.Duration
	// QuarantineVotes is how many consecutive failed health votes
	// quarantine a backend (default 3): the quorum-style detection rule
	// — one flaky probe is not a crash.
	QuarantineVotes int
	// SlowThreshold quarantine-votes a backend whose mean proxied
	// latency over a probe window exceeds it (0 disables): the
	// histogram-fed rule that treats a uselessly slow shard as faulty.
	SlowThreshold time.Duration
	// WarmKeys is how many hot plan-cache entries a topology change
	// transfers per donor backend (default 64; negative disables warm
	// transfer).
	WarmKeys int
	// MaxResponseBody caps a buffered backend response (default 32 MiB).
	MaxResponseBody int64
	// Logger receives structured router logs (default slog.Default()).
	Logger *slog.Logger
	// Client performs backend requests (default: 15s timeout).
	Client *http.Client
	// Tracer samples proxied requests into the router's own trace ring
	// (scraped together with the backends' by /debug/fleet-traces).
	// When nil, New creates one tracing every request with telemetry
	// defaults; pass a configured tracer to set the rate and buffer.
	Tracer *telemetry.Tracer
	// Journal records breaker, quarantine and topology transitions for
	// GET /debug/events. When nil, New creates one with journal
	// defaults.
	Journal *journal.Journal
	// SLOObjective is the fraction of routed requests that must be
	// good — neither a 5xx nor over the latency budget (default 0.99).
	SLOObjective float64
	// SLOLatencyBudget is the per-request latency budget the SLO's
	// slow-rate burn is measured against (default 250ms).
	SLOLatencyBudget time.Duration
}

// Router proxies /v1/* onto a fleet of linesearchd backends placed on
// a consistent-hash ring by plan key. Create with New; safe for
// concurrent use. Close stops the health loop.
type Router struct {
	cfg     Config
	logger  *slog.Logger
	client  *http.Client
	tracer  *telemetry.Tracer
	journal *journal.Journal
	slo     *sloMonitor

	mu       sync.RWMutex
	ring     *Ring
	backends map[string]*backend

	rr atomic.Uint64 // rotation for keyless routes

	proxied      atomic.Int64
	retries      atomic.Int64
	replicaReads atomic.Int64
	proxyErrs    atomic.Int64
	warmRuns     atomic.Int64
	warmKeys     atomic.Int64
	warmErrors   atomic.Int64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds a router over cfg.Backends and starts the health loop
// (unless disabled).
func New(cfg Config) (*Router, error) {
	if err := ValidateBackends(cfg.Backends); err != nil {
		return nil, err
	}
	if cfg.Attempts < 1 {
		cfg.Attempts = 3
	}
	if cfg.MaxRetryAfter <= 0 {
		cfg.MaxRetryAfter = 5 * time.Second
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 25 * time.Millisecond
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = time.Second
	}
	if cfg.QuarantineVotes < 1 {
		cfg.QuarantineVotes = 3
	}
	if cfg.WarmKeys == 0 {
		cfg.WarmKeys = 64
	}
	if cfg.MaxResponseBody <= 0 {
		cfg.MaxResponseBody = 32 << 20
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 15 * time.Second}
	}
	if cfg.Tracer == nil {
		cfg.Tracer = telemetry.New(telemetry.Config{})
	}
	if cfg.Journal == nil {
		cfg.Journal = journal.New(0)
	}
	r := &Router{
		cfg:      cfg,
		logger:   cfg.Logger,
		client:   cfg.Client,
		tracer:   cfg.Tracer,
		journal:  cfg.Journal,
		slo:      newSLOMonitor(cfg.SLOObjective, cfg.SLOLatencyBudget, nil),
		ring:     NewRing(cfg.VNodes),
		backends: make(map[string]*backend),
		stop:     make(chan struct{}),
	}
	for _, raw := range cfg.Backends {
		b, err := newBackend(raw, cfg.FailureThreshold, cfg.BreakerCooldown, cfg.Journal)
		if err != nil {
			return nil, err
		}
		if _, dup := r.backends[b.name]; dup {
			return nil, fmt.Errorf("cluster: duplicate backend %s", b.name)
		}
		r.backends[b.name] = b
		r.ring.Add(b.name)
	}
	if cfg.HealthInterval > 0 {
		r.wg.Add(1)
		go r.healthLoop()
	}
	return r, nil
}

// Close stops the health loop. It does not touch in-flight proxying.
func (r *Router) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
}

// Backends returns the sorted backend names currently on the ring.
func (r *Router) Backends() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ring.Members()
}

// Handler returns the router's route set: the /v1 proxy (traced and
// SLO-observed), its own health and metrics, the topology admin
// endpoint, and the observability surface — the router's trace ring,
// the fleet-wide stitched view, and the event journal.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/", r.handleProxy)
	mux.HandleFunc("GET /healthz", r.handleHealthz)
	mux.HandleFunc("GET /metrics", r.handleMetrics)
	mux.HandleFunc("PUT /admin/topology", r.handleTopology)
	mux.HandleFunc("GET /debug/traces", r.handleDebugTraces)
	mux.HandleFunc("GET /debug/fleet-traces", r.handleFleetTraces)
	mux.Handle("GET /debug/events", journal.Handler(r.journal))
	return mux
}

// handleProxy wraps the proxy walk with the per-request observability:
// a root span (adopting any inbound traceparent, so client-initiated
// traces stitch through the router) and the SLO monitor's view of the
// final client-visible status and latency.
func (r *Router) handleProxy(w http.ResponseWriter, req *http.Request) {
	start := time.Now()
	ctx, span := r.tracer.StartRequest(req.Context(), "proxy "+req.URL.Path, req.Header.Get("Traceparent"))
	if span != nil {
		span.SetStr("method", req.Method)
		req = req.WithContext(ctx)
	}
	rec := &sloRecorder{ResponseWriter: w}
	r.proxy(rec, req)
	status := rec.status
	if status == 0 {
		status = http.StatusOK
	}
	span.SetInt("status", int64(status))
	span.End()
	r.slo.observe(status, time.Since(start))
}

// routingPolicy maps a request to its ring key and retry policy. An
// empty key means "any backend" (rotated). Only requests without
// server-side side effects may fail over: a retried GET re-reads, a
// retried batch re-computes, but a retried sweep submission would
// duplicate a job — those get one attempt and a loud error.
func routingPolicy(req *http.Request) (key string, retryable bool) {
	p := req.URL.Path
	switch {
	case strings.HasPrefix(p, "/v1/sweeps"):
		// Sweep jobs are process-local state: pin the whole sweep API to
		// one stable home backend so submit, status and result agree.
		return "sweeps", req.Method == http.MethodGet
	case p == "/v1/batch":
		// A batch names many plan keys; any backend can serve it, and
		// evaluation is pure so the buffered body may be replayed.
		return "", true
	case p == "/v1/cache/snapshot":
		return "", req.Method == http.MethodGet
	default:
		return planKeyFromQuery(req.URL.Query()).Hash(), req.Method == http.MethodGet
	}
}

// planKeyFromQuery mirrors the service's cache-key normalization
// (mindist defaults to 1, model=crash collapses to the default) so
// the router and every backend agree on each request's plan key.
// Unparseable values keep their zero value: the backend will reject
// the request with a 400, and all the router needs is determinism.
func planKeyFromQuery(v url.Values) service.PlanKey {
	k := service.PlanKey{Strategy: v.Get("strategy"), Model: v.Get("model")}
	k.N, _ = strconv.Atoi(v.Get("n"))
	k.F, _ = strconv.Atoi(v.Get("f"))
	k.Votes, _ = strconv.Atoi(v.Get("votes"))
	if md, err := strconv.ParseFloat(v.Get("mindist"), 64); err == nil && md != 0 {
		k.MinDist = md
	} else {
		k.MinDist = 1
	}
	if k.Model == "crash" {
		k.Model = ""
	}
	return k
}

// candidates returns the backends to try for key in preference order:
// the ring's owner walk (or a rotation for keyless routes), available
// backends first. Quarantined or breaker-open backends stay in the
// list as a last resort — when every shard looks down, trying one
// beats failing without trying.
func (r *Router) candidates(key string) []*backend {
	r.mu.RLock()
	var names []string
	if key == "" {
		names = r.ring.Members()
		if len(names) > 1 {
			off := int(r.rr.Add(1)) % len(names)
			names = append(names[off:], names[:off]...)
		}
	} else {
		names = r.ring.Owners(key, r.ring.Len())
	}
	out := make([]*backend, 0, len(names))
	for _, name := range names {
		if b := r.backends[name]; b != nil {
			out = append(out, b)
		}
	}
	r.mu.RUnlock()

	now := time.Now()
	avail := make([]*backend, 0, len(out))
	rest := make([]*backend, 0, 2)
	for _, b := range out {
		if b.available(now) {
			avail = append(avail, b)
		} else {
			rest = append(rest, b)
		}
	}
	return append(avail, rest...)
}

// bufferedResponse is one backend response held in memory so a
// mid-stream failure can still fail over: nothing reaches the client
// until a whole response arrived.
type bufferedResponse struct {
	status int
	header http.Header
	body   []byte
}

// retryableStatus reports whether a backend status should fail over:
// the admission contract's 429/503 plus gateway-style 5xx. Other 4xx
// are the client's problem and 500 is a handler bug that would fail
// identically elsewhere — but injected faults map to 503, so the
// chaos path lands here.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable,
		http.StatusBadGateway, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// parseRetryAfter reads a Retry-After header (delta-seconds form),
// capped at max. Unparseable or absent values return 0.
func parseRetryAfter(h string, max time.Duration) time.Duration {
	if h == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(h))
	if err != nil || secs < 0 {
		return 0
	}
	d := time.Duration(secs) * time.Second
	if d > max {
		return max
	}
	return d
}

// errBackendStatus marks an attempt that reached a backend but came
// back with a retryable status; the response is kept for relay when
// every attempt fails the same way.
var errBackendStatus = errors.New("backend returned a retryable status")

// proxy serves one /v1/* request: pick candidates by ring key, walk
// them with the retry budget, relay the first healthy response
// byte-for-byte.
func (r *Router) proxy(w http.ResponseWriter, req *http.Request) {
	r.proxied.Add(1)
	var body []byte
	if req.Body != nil && req.Method != http.MethodGet {
		var err error
		body, err = io.ReadAll(http.MaxBytesReader(w, req.Body, maxRequestBody))
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, "read request body: "+err.Error())
			return
		}
	}
	key, retryable := routingPolicy(req)
	attempts := r.cfg.Attempts
	if !retryable {
		attempts = 1
	}
	cands := r.candidates(key)
	if len(cands) == 0 {
		r.proxyErrs.Add(1)
		writeJSONError(w, http.StatusServiceUnavailable, "no backends configured")
		return
	}

	if replicaReadable(req) && key != "" {
		if resp, ok := r.replicaRead(req, key); ok {
			relay(w, resp)
			return
		}
	}

	var lastResp *bufferedResponse
	var lastErr error
	var prev *backend
	for attempt := 0; attempt < attempts; attempt++ {
		b := cands[attempt%len(cands)]
		if attempt > 0 {
			r.retries.Add(1)
			if b == prev {
				// Same backend again (single-shard fleet): give it a
				// moment instead of hammering.
				backoff := r.cfg.RetryBackoff << (attempt - 1)
				select {
				case <-req.Context().Done():
					writeJSONError(w, http.StatusServiceUnavailable, "request cancelled during retry")
					return
				case <-time.After(backoff):
				}
			}
		}
		prev = b
		resp, err := r.forward(req, b, body)
		if err == nil {
			relay(w, resp)
			return
		}
		lastErr = err
		if errors.Is(err, errBackendStatus) {
			lastResp = resp
		}
		r.logger.Debug("proxy attempt failed",
			"backend", b.name, "path", req.URL.Path, "attempt", attempt+1, "err", err)
	}
	r.proxyErrs.Add(1)
	if lastResp != nil {
		// Every shard shed or failed identically: relay the backend's
		// own answer, Retry-After and all, so clients keep the single-
		// process admission contract.
		relay(w, lastResp)
		return
	}
	writeJSONError(w, http.StatusBadGateway,
		fmt.Sprintf("all %d attempt(s) failed: %v", attempts, lastErr))
}

// replicaReadable reports whether a request may be served by any plan
// owner rather than only the primary: a side-effect-free GET whose
// response is a pure function of the query (the plan construction is
// deterministic, so every owner answers byte-identically). Timelines
// and plans qualify too, but searchtime reads dominate the read path.
func replicaReadable(req *http.Request) bool {
	if req.Method != http.MethodGet {
		return false
	}
	p := req.URL.Path
	return p == "/v1/searchtime" || p == "/v1/searchtimes"
}

// replicaRead fans a pure read out to the key's first two ring owners
// when the primary is unavailable (breaker open, quarantined by health
// voting or by the slow-vote rule), first good answer wins. Returns
// (nil, false) when the primary is healthy or no second owner exists —
// the normal sequential path handles it. Determinism makes this safe:
// every owner computes the identical bytes, so racing them changes
// latency, never content.
func (r *Router) replicaRead(req *http.Request, key string) (*bufferedResponse, bool) {
	r.mu.RLock()
	names := r.ring.Owners(key, 2)
	owners := make([]*backend, 0, len(names))
	for _, name := range names {
		if b := r.backends[name]; b != nil {
			owners = append(owners, b)
		}
	}
	r.mu.RUnlock()
	if len(owners) < 2 || owners[0].available(time.Now()) {
		return nil, false
	}
	r.replicaReads.Add(1)
	ctx, span := telemetry.StartSpan(req.Context(), "replica-read")
	if span != nil {
		span.SetStr("primary", owners[0].name)
		defer span.End()
		req = req.WithContext(ctx)
	}

	type result struct {
		resp *bufferedResponse
		err  error
	}
	results := make(chan result, len(owners))
	for _, b := range owners {
		b := b
		go func() {
			resp, err := r.forward(req, b, nil)
			results <- result{resp, err}
		}()
	}
	for range owners {
		res := <-results
		if res.err == nil {
			return res.resp, true
		}
	}
	// Both owners failed. Fall back to the sequential walk: it retries
	// the whole ring and owns the relay-the-shed-response contract.
	return nil, false
}

// forward sends one attempt to one backend and buffers the whole
// response. Transport errors and retryable statuses feed the breaker.
// When the request is traced, the attempt gets its own child span and
// the outbound copy carries a traceparent for this trace, so the
// backend's root span stitches under the router's — the cross-process
// propagation half of /debug/fleet-traces.
func (r *Router) forward(req *http.Request, b *backend, body []byte) (*bufferedResponse, error) {
	start := time.Now()
	ctx, span := telemetry.StartSpan(req.Context(), "forward")
	span.SetStr("backend", b.name)
	defer span.End()
	fail := func(err error) (*bufferedResponse, error) {
		span.SetStr("error", err.Error())
		b.failures.Add(1)
		b.breaker.failure(time.Now(), 0)
		return nil, err
	}
	b.requests.Add(1)
	if err := faultpoint.Hit(fpForward); err != nil {
		return fail(err)
	}
	if err := faultpoint.Hit(fpForward + "." + b.name); err != nil {
		return fail(err)
	}

	out := req.Clone(ctx)
	out.RequestURI = ""
	out.URL = &url.URL{
		Scheme:   b.base.Scheme,
		Host:     b.base.Host,
		Path:     req.URL.Path,
		RawQuery: req.URL.RawQuery,
	}
	out.Host = ""
	if body != nil {
		out.Body = io.NopCloser(bytes.NewReader(body))
		out.ContentLength = int64(len(body))
	} else {
		out.Body = http.NoBody
		out.ContentLength = 0
	}
	if host, _, err := net.SplitHostPort(req.RemoteAddr); err == nil {
		out.Header.Set("X-Forwarded-For", host)
	}
	if tp := telemetry.Traceparent(ctx); tp != "" {
		out.Header.Set("Traceparent", tp)
	}

	resp, err := r.client.Do(out)
	if err != nil {
		return fail(err)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, r.cfg.MaxResponseBody))
	resp.Body.Close()
	elapsed := time.Since(start)
	b.hist.Observe(elapsed)
	if err != nil {
		// Died mid-body: the client saw nothing yet, so fail over.
		return fail(fmt.Errorf("read backend response: %w", err))
	}
	span.SetInt("status", int64(resp.StatusCode))
	br := &bufferedResponse{status: resp.StatusCode, header: resp.Header.Clone(), body: data}
	if retryableStatus(resp.StatusCode) {
		b.failures.Add(1)
		b.breaker.failure(time.Now(), parseRetryAfter(resp.Header.Get("Retry-After"), r.cfg.MaxRetryAfter))
		return br, fmt.Errorf("%w: %s from %s", errBackendStatus, resp.Status, b.name)
	}
	b.breaker.success()
	return br, nil
}

// hopByHop are connection-level headers a proxy must not relay.
var hopByHop = []string{
	"Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
	"Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

// relay writes a buffered backend response to the client byte-for-byte.
func relay(w http.ResponseWriter, resp *bufferedResponse) {
	h := w.Header()
	for k, vs := range resp.header {
		for _, v := range vs {
			h.Add(k, v)
		}
	}
	for _, k := range hopByHop {
		h.Del(k)
	}
	h.Set("Content-Length", strconv.Itoa(len(resp.body)))
	w.WriteHeader(resp.status)
	w.Write(resp.body)
}

// writeJSONError emits the service's uniform error payload shape so
// router-originated errors look like backend errors to clients.
func writeJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
