package cluster

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"linesearch/internal/faultpoint"
	"linesearch/internal/service"
	"linesearch/internal/sweep"
	"linesearch/internal/telemetry/journal"
)

// eventsDumpDirEnv names the directory a failed test dumps each node's
// /debug/events JSON into. The chaos CI jobs set it and upload the
// directory as an artifact, so a red partition run ships the journals
// needed for the postmortem.
const eventsDumpDirEnv = "LINESEARCH_EVENTS_DUMP_DIR"

// dumpEvents writes n's event journal — rendered through the same
// handler that serves /debug/events, so the artifact matches what an
// operator would have curled — into dir.
func dumpEvents(t *testing.T, dir string, n *replicaNode) {
	rec := httptest.NewRecorder()
	journal.Handler(n.jrnl)(rec, httptest.NewRequest(http.MethodGet, "/debug/events", nil))
	host := strings.TrimPrefix(n.srv.URL, "http://")
	name := strings.NewReplacer("/", "_", ":", "-").Replace(t.Name()+"-"+host) + ".json"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("events dump: %v", err)
		return
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, rec.Body.Bytes(), 0o644); err != nil {
		t.Logf("events dump: %v", err)
		return
	}
	t.Logf("events journal dumped to %s", path)
}

// replicaNode is one backend with a replica store and a replicator:
// the full replication triangle in-process.
type replicaNode struct {
	svc   *service.Service
	srv   *httptest.Server
	store *sweep.ReplicaStore
	mgr   *sweep.Manager
	rep   *Replicator
	jrnl  *journal.Journal
}

func (n *replicaNode) close() {
	n.srv.Close()
	n.svc.Close()
}

// newReplicaNode builds a backend whose sweep manager streams every
// checkpoint through a Replicator, exactly as linesearchd wires it.
// Optional tweaks adjust the sweep config (the chaos suite slows
// evaluation and checkpoints every cell so a kill lands mid-flight).
func newReplicaNode(t *testing.T, tweaks ...func(*sweep.Config)) *replicaNode {
	t.Helper()
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	n := &replicaNode{}
	n.store = sweep.NewReplicaStore(t.TempDir(), logger)
	home := t.TempDir()
	sweepCfg := sweep.Config{
		Dir:        home,
		Workers:    1,
		Logger:     logger,
		ReplicaDir: n.store.Dir(),
		OnCheckpoint: func(cp sweep.Checkpoint) {
			if n.rep != nil {
				n.rep.Replicate(context.Background(), cp)
			}
		},
	}
	for _, tweak := range tweaks {
		tweak(&sweepCfg)
	}
	n.jrnl = journal.New(0)
	if dir := os.Getenv(eventsDumpDirEnv); dir != "" {
		t.Cleanup(func() {
			if t.Failed() {
				dumpEvents(t, dir, n)
			}
		})
	}
	n.mgr = sweep.NewManager(sweepCfg)
	n.svc = service.New(service.Config{Logger: logger, Sweeps: n.mgr, Replicas: n.store, Journal: n.jrnl})
	n.srv = httptest.NewServer(n.svc.Handler())
	rep, err := NewReplicator(ReplicatorConfig{
		Self:    n.srv.URL,
		Logger:  logger,
		Journal: n.jrnl,
		LocalDigest: func() map[string]sweep.CheckpointInfo {
			out := sweep.ScanCheckpoints(home)
			for id, info := range n.store.Digest() {
				if held, ok := out[id]; !ok || info.Newer(held) {
					out[id] = info
				}
			}
			return out
		},
		LoadLocal: func(id string) (*sweep.Checkpoint, error) {
			if cp, err := sweep.LoadCheckpoint(home, id); err == nil && cp != nil {
				return cp, nil
			}
			return n.store.Get(id)
		},
		Apply: n.store.Put,
	})
	if err != nil {
		t.Fatalf("NewReplicator: %v", err)
	}
	n.rep = rep
	return n
}

// runSweep submits a small sweep on node and waits for it.
func runSweep(t *testing.T, n *replicaNode) string {
	t.Helper()
	j, err := n.mgr.Submit(sweep.Spec{N: []int{3}, F: []int{1}, XMax: 8})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-j.Done()
	if st := j.Status(); st.State != sweep.StateDone {
		t.Fatalf("sweep finished %s: %+v", st.State, st)
	}
	return j.ID()
}

func TestReplicatorStreamsToOwner(t *testing.T) {
	a, b := newReplicaNode(t), newReplicaNode(t)
	defer a.close()
	defer b.close()
	members := []string{a.srv.URL, b.srv.URL}
	a.rep.SetMembers(members)
	b.rep.SetMembers(members)

	id := runSweep(t, a)

	// b's replica store must now hold a's terminal checkpoint with a's
	// checksum, byte for byte.
	got, err := b.store.Get(id)
	if err != nil || got == nil {
		t.Fatalf("replica missing on peer: %v, %v", got, err)
	}
	home, lerr := sweep.LoadCheckpoint(a.mgr.Dir(), id)
	if lerr != nil || home == nil {
		t.Fatalf("home checkpoint: %v, %v", home, lerr)
	}
	if got.Checksum != home.Checksum {
		t.Fatalf("replica checksum %s != home %s", got.Checksum, home.Checksum)
	}
	if st := a.rep.Stats(); st.Replicated == 0 {
		t.Fatalf("replicator recorded no pushes: %+v", st)
	}
}

// TestReplicatorHintedHandoff downs the peer during the sweep, then
// heals it: the checkpoints must arrive via hint replay in the next
// anti-entropy pass, and converge to the home checksum.
func TestReplicatorHintedHandoff(t *testing.T) {
	defer faultpoint.Reset()
	a, b := newReplicaNode(t), newReplicaNode(t)
	defer a.close()
	defer b.close()
	members := []string{a.srv.URL, b.srv.URL}
	a.rep.SetMembers(members)
	b.rep.SetMembers(members)

	bName, _ := memberName(b.srv.URL)
	faultpoint.Arm(fpReplicate+"."+bName, faultpoint.Rule{})
	id := runSweep(t, a)

	if got, _ := b.store.Get(id); got != nil {
		t.Fatal("checkpoint reached the downed peer")
	}
	st := a.rep.Stats()
	if st.Hinted == 0 || st.HintsPending == 0 {
		t.Fatalf("no hints spooled while peer was down: %+v", st)
	}

	faultpoint.Reset()
	if rep := a.rep.AntiEntropy(context.Background()); rep == 0 && a.rep.Stats().HintsReplayed == 0 {
		t.Fatal("anti-entropy neither replayed hints nor repaired")
	}
	got, err := b.store.Get(id)
	if err != nil || got == nil {
		t.Fatalf("replica still missing after heal: %v, %v", got, err)
	}
	home, _ := sweep.LoadCheckpoint(a.mgr.Dir(), id)
	if home == nil || got.Checksum != home.Checksum {
		t.Fatalf("replica did not converge to the home checksum")
	}
	if st := a.rep.Stats(); st.HintsPending != 0 {
		t.Fatalf("hints still pending after replay: %+v", st)
	}
}

// TestReplicatorHintSpoolBounded pins the handoff bound: latest-wins
// per job, oldest job evicted at the limit.
func TestReplicatorHintSpoolBounded(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	rep, err := NewReplicator(ReplicatorConfig{
		Self:        "http://127.0.0.1:1",
		HintLimit:   2,
		Logger:      logger,
		LocalDigest: func() map[string]sweep.CheckpointInfo { return nil },
		LoadLocal:   func(string) (*sweep.Checkpoint, error) { return nil, nil },
		Apply:       func(sweep.Checkpoint) error { return nil },
	})
	if err != nil {
		t.Fatalf("NewReplicator: %v", err)
	}
	cp := func(id string, cells int) sweep.Checkpoint {
		c := sweep.Checkpoint{ID: id}
		for i := 0; i < cells; i++ {
			c.Cells = append(c.Cells, sweep.Cell{Index: i})
		}
		return c
	}
	rep.hint(context.Background(), "peer", cp("job-1", 1))
	rep.hint(context.Background(), "peer", cp("job-1", 2)) // latest-wins: still one entry
	rep.hint(context.Background(), "peer", cp("job-2", 1))
	rep.hint(context.Background(), "peer", cp("job-3", 1)) // evicts job-1
	st := rep.Stats()
	if st.HintsPending != 2 || st.HintsDropped != 1 {
		t.Fatalf("spool = %+v, want 2 pending / 1 dropped", st)
	}
	hints := rep.takeHints("peer")
	if len(hints) != 2 || hints[0].ID != "job-2" || hints[1].ID != "job-3" {
		t.Fatalf("drained hints = %v, want job-2 then job-3", hints)
	}
}

// TestReplicatorAntiEntropyPulls makes the peer strictly ahead (it ran
// the sweep; we hold nothing) and requires the local side to pull the
// checkpoint during its own anti-entropy pass.
func TestReplicatorAntiEntropyPulls(t *testing.T) {
	a, b := newReplicaNode(t), newReplicaNode(t)
	defer a.close()
	defer b.close()
	members := []string{a.srv.URL, b.srv.URL}
	// Only b's replicator knows the fleet; a never saw the checkpoint.
	b.rep.SetMembers(members)
	faultpoint.Arm(fpReplicate, faultpoint.Rule{})
	id := runSweep(t, b)
	faultpoint.Reset()
	// Drop the spooled hints: this test exercises the digest path.
	for _, member := range b.rep.Owners() {
		b.rep.takeHints(member)
	}

	a.rep.SetMembers(members)
	if got, _ := a.store.Get(id); got != nil {
		t.Fatal("test setup leaked the checkpoint to a")
	}
	if repairs := a.rep.AntiEntropy(context.Background()); repairs == 0 {
		t.Fatalf("anti-entropy found nothing to pull: %+v", a.rep.Stats())
	}
	got, err := a.store.Get(id)
	if err != nil || got == nil {
		t.Fatalf("pull repair did not land: %v, %v", got, err)
	}
	home, _ := sweep.LoadCheckpoint(b.mgr.Dir(), id)
	if home == nil || got.Checksum != home.Checksum {
		t.Fatal("pulled replica does not match the peer's home checksum")
	}
}

func TestReplicatorValidation(t *testing.T) {
	digest := func() map[string]sweep.CheckpointInfo { return nil }
	load := func(string) (*sweep.Checkpoint, error) { return nil, nil }
	apply := func(sweep.Checkpoint) error { return nil }
	if _, err := NewReplicator(ReplicatorConfig{LocalDigest: digest, LoadLocal: load, Apply: apply}); err == nil {
		t.Fatal("NewReplicator accepted an empty Self")
	}
	if _, err := NewReplicator(ReplicatorConfig{Self: "http://ok:1"}); err == nil {
		t.Fatal("NewReplicator accepted missing accessors")
	}
	if _, err := NewReplicator(ReplicatorConfig{Self: "not a url", LocalDigest: digest, LoadLocal: load, Apply: apply}); err == nil {
		t.Fatal("NewReplicator accepted a bad Self URL")
	}
}
