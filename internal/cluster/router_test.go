package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"linesearch/internal/faultpoint"
	"linesearch/internal/service"
)

// fleet is a router fronting n in-process linesearchd backends.
type fleet struct {
	router   *Router
	frontend *httptest.Server // the router's own listener
	backends []*httptest.Server
	services []*service.Service
}

func (f *fleet) close() {
	f.frontend.Close()
	f.router.Close()
	for _, b := range f.backends {
		b.Close()
	}
	for _, s := range f.services {
		s.Close()
	}
}

// newFleet builds n real service instances behind httptest listeners
// and a router over them. The health loop is disabled: tests drive
// ProbeAll deterministically.
func newFleet(t *testing.T, n int, cfg Config) *fleet {
	t.Helper()
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	f := &fleet{}
	urls := make([]string, 0, n)
	for i := 0; i < n; i++ {
		svc := service.New(service.Config{Logger: quiet})
		srv := httptest.NewServer(svc.Handler())
		f.services = append(f.services, svc)
		f.backends = append(f.backends, srv)
		urls = append(urls, srv.URL)
	}
	cfg.Backends = urls
	cfg.HealthInterval = -1
	if cfg.Logger == nil {
		cfg.Logger = quiet
	}
	router, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	f.router = router
	f.frontend = httptest.NewServer(router.Handler())
	t.Cleanup(f.close)
	return f
}

// backendName returns the ring member name of backend i.
func (f *fleet) backendName(i int) string {
	return strings.TrimPrefix(f.backends[i].URL, "http://")
}

// cacheStats reads one backend's plan-cache counters off its JSON
// /metrics surface.
func (f *fleet) cacheStats(t *testing.T, i int) service.CacheStats {
	t.Helper()
	resp, err := http.Get(f.backends[i].URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	var snap struct {
		Cache service.CacheStats `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	return snap.Cache
}

// get issues one GET through the router's frontend.
func (f *fleet) get(t *testing.T, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(f.frontend.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, body
}

// queryMix is the request set the byte-identity and chaos tests drive:
// every query-class endpoint with a spread of plan keys.
func queryMix() []string {
	var out []string
	for n := 2; n <= 7; n++ {
		for fcount := 1; fcount < n && fcount <= 3; fcount++ {
			out = append(out,
				fmt.Sprintf("/v1/plan?n=%d&f=%d", n, fcount),
				fmt.Sprintf("/v1/searchtime?n=%d&f=%d&x=4.5", n, fcount),
				fmt.Sprintf("/v1/lowerbound?n=%d&f=%d", n, fcount),
			)
		}
	}
	return out
}

// TestRouterByteIdenticalToSingleProcess pins the proxy transparency
// contract: for the full query mix, a 3-backend fleet answers byte for
// byte what one unsharded linesearchd answers.
func TestRouterByteIdenticalToSingleProcess(t *testing.T) {
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	single := service.New(service.Config{Logger: quiet})
	defer single.Close()
	ref := httptest.NewServer(single.Handler())
	defer ref.Close()

	f := newFleet(t, 3, Config{})
	for _, q := range queryMix() {
		want, err := http.Get(ref.URL + q)
		if err != nil {
			t.Fatalf("reference GET %s: %v", q, err)
		}
		wantBody, _ := io.ReadAll(want.Body)
		want.Body.Close()

		code, gotBody := f.get(t, q)
		if code != want.StatusCode {
			t.Fatalf("%s: status %d via router, %d direct", q, code, want.StatusCode)
		}
		if !bytes.Equal(gotBody, wantBody) {
			t.Errorf("%s: body differs\nrouter: %s\ndirect: %s", q, gotBody, wantBody)
		}
	}
	// The same request twice must land on the same backend (ring
	// placement is deterministic): cache counters prove it — a second
	// pass over the mix is all hits somewhere, never a duplicate build.
	var missesBefore, hitsBefore int64
	for i := range f.backends {
		cs := f.cacheStats(t, i)
		missesBefore += cs.Misses
		hitsBefore += cs.Hits
	}
	for _, q := range queryMix() {
		f.get(t, q)
	}
	var missesAfter, hitsAfter int64
	for i := range f.backends {
		cs := f.cacheStats(t, i)
		missesAfter += cs.Misses
		hitsAfter += cs.Hits
	}
	if missesAfter != missesBefore {
		t.Errorf("second pass caused %d cache misses; ring placement not sticky", missesAfter-missesBefore)
	}
	if hitsAfter <= hitsBefore {
		t.Errorf("second pass produced no cache hits (before %d, after %d)", hitsBefore, hitsAfter)
	}
}

// TestRouterFailoverOnKilledBackend is the deterministic integration
// test: a 3-backend fleet, one backend killed mid-run via its
// injection point, every client request still succeeds via retry, and
// the killed backend's share is served by the survivors with no
// duplicate side effects (the query mix is read-only compute).
func TestRouterFailoverOnKilledBackend(t *testing.T) {
	f := newFleet(t, 3, Config{})
	t.Cleanup(faultpoint.Reset)

	// Kill backend 0: every forward to it fails at the injection point,
	// exactly as if the process dropped the connection.
	faultpoint.Arm(fpForward+"."+f.backendName(0), faultpoint.Rule{Mode: faultpoint.ModeError})

	for _, q := range queryMix() {
		code, body := f.get(t, q)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d with a killed backend, body %s", q, code, body)
		}
	}
	st := f.router.Stats()
	if st.ProxyErrors != 0 {
		t.Errorf("proxy errors = %d, want 0 (failover should absorb the kill)", st.ProxyErrors)
	}
	if st.Retries == 0 {
		t.Errorf("retries = 0; the killed backend's keys never failed over")
	}

	// Restart: disarm the point; the backend serves again once its
	// breaker cooldown lapses (forced here via a probe-driven reset).
	faultpoint.Reset()
	f.router.ProbeAll()
	for _, q := range queryMix() {
		if code, body := f.get(t, q); code != http.StatusOK {
			t.Fatalf("%s after restart: status %d, body %s", q, code, body)
		}
	}
}

// TestRouterChaosKillRestart is the acceptance-criteria run: client
// load races a chaos schedule that kills backend 0, lets it fail, then
// restarts it — zero failed client requests end to end. Run under
// -race in CI.
func TestRouterChaosKillRestart(t *testing.T) {
	f := newFleet(t, 3, Config{BreakerCooldown: 50 * time.Millisecond})
	t.Cleanup(faultpoint.Reset)

	mix := queryMix()
	var wg sync.WaitGroup
	errs := make(chan string, 256)
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := mix[(i*7+w)%len(mix)]
				resp, err := client.Get(f.frontend.URL + q)
				if err != nil {
					errs <- fmt.Sprintf("worker %d: %v", w, err)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("worker %d: %s -> %d", w, q, resp.StatusCode)
				}
			}
		}(w)
	}

	// The chaos schedule: kill backend 0, let the fleet absorb it, then
	// restart and let the breaker close again.
	time.Sleep(50 * time.Millisecond)
	faultpoint.Arm(fpForward+"."+f.backendName(0), faultpoint.Rule{Mode: faultpoint.ModeError})
	time.Sleep(150 * time.Millisecond)
	faultpoint.Reset()
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Errorf("failed client request: %s", e)
	}
	if st := f.router.Stats(); st.Proxied < 50 {
		t.Fatalf("only %d requests proxied; chaos window too small to mean anything", st.Proxied)
	}
}

// TestRouterRelaysShedResponse pins the admission-contract relay: when
// every backend sheds, the client sees the backend's own 429/503 with
// its Retry-After, not a synthetic router error.
func TestRouterRelaysShedResponse(t *testing.T) {
	var attempts int
	var mu sync.Mutex
	shed := func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		attempts++
		mu.Unlock()
		w.Header().Set("Retry-After", "2")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"query capacity exhausted"}`))
	}
	backends := []*httptest.Server{
		httptest.NewServer(http.HandlerFunc(shed)),
		httptest.NewServer(http.HandlerFunc(shed)),
	}
	defer backends[0].Close()
	defer backends[1].Close()
	router, err := New(Config{
		Backends:       []string{backends[0].URL, backends[1].URL},
		HealthInterval: -1,
		Logger:         slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	front := httptest.NewServer(router.Handler())
	defer front.Close()

	resp, err := http.Get(front.URL + "/v1/plan?n=3&f=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 relayed", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want the backend's own value", ra)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "query capacity exhausted") {
		t.Fatalf("body = %s, want the backend's shed payload", body)
	}
	// Both breakers now hold the Retry-After cooldown: the next request
	// within it still goes out (they are a last resort), but the
	// breakers report open.
	now := time.Now()
	for _, b := range router.backends {
		if !b.breaker.open(now) {
			t.Errorf("backend %s breaker closed; Retry-After not honored", b.name)
		}
	}
}

// TestRouterSingleAttemptForSideEffects pins the no-duplicates rule:
// a failing sweep submission is tried exactly once.
func TestRouterSingleAttemptForSideEffects(t *testing.T) {
	var posts int
	var mu sync.Mutex
	failing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			mu.Lock()
			posts++
			mu.Unlock()
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer failing.Close()
	ok := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer ok.Close()
	router, err := New(Config{
		Backends:       []string{failing.URL, ok.URL},
		HealthInterval: -1,
		Logger:         slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	front := httptest.NewServer(router.Handler())
	defer front.Close()

	// Find which backend the sweeps home key pins to; only a fleet
	// where the failing backend is home exercises the property, so pin
	// deterministically by asking the ring.
	home := router.ring.Owner("sweeps")
	failingName := strings.TrimPrefix(failing.URL, "http://")
	if home != failingName {
		// Swap roles: rebuild with only the failing backend so the home
		// is forced onto it.
		router.Close()
		front.Close()
		router, err = New(Config{
			Backends:       []string{failing.URL},
			HealthInterval: -1,
			Logger:         slog.New(slog.NewTextHandler(io.Discard, nil)),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer router.Close()
		front = httptest.NewServer(router.Handler())
		defer front.Close()
	}

	resp, err := http.Post(front.URL+"/v1/sweeps", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want the relayed 503", resp.StatusCode)
	}
	mu.Lock()
	defer mu.Unlock()
	if posts != 1 {
		t.Fatalf("failing sweep submission tried %d times, want exactly 1", posts)
	}
}

// TestRouterWarmTransfer pins the tentpole acceptance criterion: after
// a topology change, keys that moved to the joining backend are served
// from its warmed cache — hits, zero misses, zero builds on the
// serving path.
func TestRouterWarmTransfer(t *testing.T) {
	f := newFleet(t, 2, Config{WarmKeys: 64})

	// Warm the fleet through the router so each backend caches its
	// share of the mix.
	var planQueries []string
	for n := 2; n <= 9; n++ {
		for fc := 1; fc < n && fc <= 2; fc++ {
			planQueries = append(planQueries, fmt.Sprintf("/v1/plan?n=%d&f=%d", n, fc))
		}
	}
	for _, q := range planQueries {
		if code, body := f.get(t, q); code != http.StatusOK {
			t.Fatalf("%s: %d %s", q, code, body)
		}
	}

	// Join a third backend and reshape.
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	joiner := service.New(service.Config{Logger: quiet})
	joinerSrv := httptest.NewServer(joiner.Handler())
	t.Cleanup(func() { joinerSrv.Close(); joiner.Close() })
	urls := []string{f.backends[0].URL, f.backends[1].URL, joinerSrv.URL}
	if err := f.router.SetTopology(urls); err != nil {
		t.Fatalf("SetTopology: %v", err)
	}

	// The joiner now owns ~1/3 of the warmed keys; the warm transfer
	// must have pushed them.
	readJoiner := func() service.CacheStats {
		resp, err := http.Get(joinerSrv.URL + "/metrics")
		if err != nil {
			t.Fatalf("joiner metrics: %v", err)
		}
		defer resp.Body.Close()
		var snap struct {
			Cache service.CacheStats `json:"cache"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		return snap.Cache
	}
	cs := readJoiner()
	if cs.Imports == 0 || cs.Warmed == 0 {
		t.Fatalf("joiner cache after transfer: imports=%d warmed=%d, want both > 0", cs.Imports, cs.Warmed)
	}
	st := f.router.Stats()
	if st.WarmRuns != 1 || st.WarmKeys == 0 || st.WarmErrors != 0 {
		t.Fatalf("router warm stats = runs %d, keys %d, errors %d", st.WarmRuns, st.WarmKeys, st.WarmErrors)
	}

	// Replay the full mix: the joiner serves its keys as pure hits.
	// Warmed builds happened at import time; the serving path must add
	// hits only.
	warmedBefore, missesBefore := cs.Warmed, cs.Misses
	for _, q := range planQueries {
		if code, body := f.get(t, q); code != http.StatusOK {
			t.Fatalf("%s after reshape: %d %s", q, code, body)
		}
	}
	cs = readJoiner()
	if cs.Misses != missesBefore {
		t.Errorf("joiner took %d cache misses serving transferred keys, want 0 (recompute on the serving path)",
			cs.Misses-missesBefore)
	}
	if cs.Warmed != warmedBefore {
		t.Errorf("joiner warmed %d more entries while serving; imports must not happen on the request path",
			cs.Warmed-warmedBefore)
	}
	if cs.Hits == 0 {
		t.Errorf("joiner served no hits; transferred keys were not routed to it")
	}
}

// TestRouterHealthQuorumVoting pins the detection rule: a backend is
// quarantined only after QuarantineVotes consecutive failed probes,
// and one healthy probe lifts the quarantine.
func TestRouterHealthQuorumVoting(t *testing.T) {
	var healthy = true
	var mu sync.Mutex
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		ok := healthy
		mu.Unlock()
		if r.URL.Path == "/healthz" && !ok {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer flaky.Close()
	router, err := New(Config{
		Backends:        []string{flaky.URL},
		HealthInterval:  -1,
		QuarantineVotes: 3,
		Logger:          slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	name := strings.TrimPrefix(flaky.URL, "http://")
	b := router.backends[name]

	setHealthy := func(v bool) { mu.Lock(); healthy = v; mu.Unlock() }

	setHealthy(false)
	router.ProbeAll()
	router.ProbeAll()
	if b.down.Load() {
		t.Fatal("quarantined after 2 votes; quorum is 3")
	}
	router.ProbeAll()
	if !b.down.Load() {
		t.Fatal("not quarantined after 3 consecutive failed votes")
	}
	if b.quarantines.Load() != 1 {
		t.Fatalf("quarantine transitions = %d, want 1", b.quarantines.Load())
	}
	// A flap must not double-count transitions while already down.
	router.ProbeAll()
	if b.quarantines.Load() != 1 {
		t.Fatalf("extra failed probe while down recounted the transition")
	}
	setHealthy(true)
	router.ProbeAll()
	if b.down.Load() {
		t.Fatal("healthy probe did not lift the quarantine")
	}
	if b.votes.Load() != 0 {
		t.Fatal("healthy probe did not reset the vote count")
	}
}

// TestRouterSlowVote pins the histogram-fed rule: a backend whose mean
// proxied latency over a probe window exceeds SlowThreshold draws
// failed votes exactly like a dead one.
func TestRouterSlowVote(t *testing.T) {
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer fast.Close()
	router, err := New(Config{
		Backends:        []string{fast.URL},
		HealthInterval:  -1,
		QuarantineVotes: 2,
		SlowThreshold:   10 * time.Millisecond,
		Logger:          slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	name := strings.TrimPrefix(fast.URL, "http://")
	b := router.backends[name]

	// Feed the histogram the latencies the probe window will diff: the
	// proxied path observed a slow spell.
	b.hist.Observe(50 * time.Millisecond)
	b.hist.Observe(60 * time.Millisecond)
	router.ProbeAll() // vote 1: healthz ok, but mean 55ms > 10ms
	if b.down.Load() {
		t.Fatal("one slow vote quarantined; quorum is 2")
	}
	b.hist.Observe(40 * time.Millisecond)
	router.ProbeAll() // vote 2
	if !b.down.Load() {
		t.Fatal("two consecutive slow votes did not quarantine")
	}
	// A quiet window (no new observations) reads as healthy: dc == 0.
	router.ProbeAll()
	if b.down.Load() {
		t.Fatal("quiet window did not lift the slow quarantine")
	}
}

// TestRouterTopologyEndpoint drives PUT /admin/topology over HTTP.
func TestRouterTopologyEndpoint(t *testing.T) {
	f := newFleet(t, 2, Config{WarmKeys: -1})
	body := fmt.Sprintf(`{"backends": [%q]}`, f.backends[0].URL)
	req, _ := http.NewRequest(http.MethodPut, f.frontend.URL+"/admin/topology", strings.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("topology update: %d", resp.StatusCode)
	}
	if got := f.router.Backends(); len(got) != 1 || got[0] != f.backendName(0) {
		t.Fatalf("Backends() = %v after shrink", got)
	}
	// Invalid payloads are rejected without touching the ring.
	req, _ = http.NewRequest(http.MethodPut, f.frontend.URL+"/admin/topology", strings.NewReader(`{"backends": []}`))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty topology accepted: %d", resp.StatusCode)
	}
}

// TestRoutingPolicy pins the retry/pinning table.
func TestRoutingPolicy(t *testing.T) {
	cases := []struct {
		method, path  string
		wantKey       string // "" = any backend; "sweeps" = pinned; "plan" = key-hashed
		wantRetryable bool
	}{
		{"GET", "/v1/plan?n=3&f=1", "plan", true},
		{"GET", "/v1/searchtime?n=3&f=1&x=2", "plan", true},
		{"POST", "/v1/batch", "", true},
		{"POST", "/v1/sweeps", "sweeps", false},
		{"GET", "/v1/sweeps", "sweeps", true},
		{"DELETE", "/v1/sweeps/abc", "sweeps", false},
		{"GET", "/v1/cache/snapshot", "", true},
		{"PUT", "/v1/cache/snapshot", "", false},
	}
	for _, tc := range cases {
		req := httptest.NewRequest(tc.method, tc.path, nil)
		key, retryable := routingPolicy(req)
		if retryable != tc.wantRetryable {
			t.Errorf("%s %s: retryable = %v, want %v", tc.method, tc.path, retryable, tc.wantRetryable)
		}
		switch tc.wantKey {
		case "sweeps":
			if key != "sweeps" {
				t.Errorf("%s %s: key = %q, want sweeps pin", tc.method, tc.path, key)
			}
		case "":
			if key != "" {
				t.Errorf("%s %s: key = %q, want any-backend", tc.method, tc.path, key)
			}
		case "plan":
			if key == "" || key == "sweeps" {
				t.Errorf("%s %s: key = %q, want a plan-key hash", tc.method, tc.path, key)
			}
		}
	}
	// The plan key normalizes exactly like the service cache: same key
	// for defaulted and explicit mindist, and for model=crash vs none.
	base := httptest.NewRequest("GET", "/v1/plan?n=3&f=1", nil)
	explicit := httptest.NewRequest("GET", "/v1/plan?n=3&f=1&mindist=1&model=crash", nil)
	k1, _ := routingPolicy(base)
	k2, _ := routingPolicy(explicit)
	if k1 != k2 {
		t.Errorf("defaulted and explicit plan params hash differently: %s vs %s", k1, k2)
	}
	timeline := httptest.NewRequest("GET", "/v1/timeline?n=3&f=1&x=2", nil)
	k3, _ := routingPolicy(timeline)
	if k3 != k1 {
		t.Errorf("timeline and plan for the same key hash differently; cache locality lost")
	}
}

// TestRouterReplicaReadFanout pins the replica-read path: when a pure
// read's primary owner is unavailable (quarantined or breaker-open),
// the router fans the request out to the key's owner pair and relays
// the first good answer — byte-identical to a healthy single process,
// because plan construction is deterministic on every owner.
func TestRouterReplicaReadFanout(t *testing.T) {
	defer faultpoint.Reset()
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	single := service.New(service.Config{Logger: quiet})
	defer single.Close()
	ref := httptest.NewServer(single.Handler())
	defer ref.Close()

	f := newFleet(t, 3, Config{})
	defer f.close()

	queries := []string{
		"/v1/searchtime?n=3&f=1&x=4.5",
		"/v1/searchtimes?n=4&f=2&xs=1.5,2.5,9",
		"/v1/searchtime?n=5&f=2&x=12&k=2",
	}
	for _, q := range queries {
		req := httptest.NewRequest("GET", q, nil)
		key, _ := routingPolicy(req)
		f.router.mu.RLock()
		primary := f.router.ring.Owner(key)
		b := f.router.backends[primary]
		f.router.mu.RUnlock()

		// Quarantine the primary and kill its link so only the second
		// owner can answer.
		b.down.Store(true)
		faultpoint.Arm(fpForward+"."+primary, faultpoint.Rule{})

		before := f.router.replicaReads.Load()
		code, got := f.get(t, q)
		faultpoint.Reset()
		b.down.Store(false)

		want, err := http.Get(ref.URL + q)
		if err != nil {
			t.Fatalf("reference GET %s: %v", q, err)
		}
		wantBody, _ := io.ReadAll(want.Body)
		want.Body.Close()
		if code != want.StatusCode {
			t.Fatalf("%s: status %d via fanout, %d direct", q, code, want.StatusCode)
		}
		if !bytes.Equal(got, wantBody) {
			t.Errorf("%s: fanout body differs from single-process\nfanout: %s\ndirect: %s", q, got, wantBody)
		}
		if f.router.replicaReads.Load() == before {
			t.Errorf("%s: replica fan-out never engaged", q)
		}
	}
}

// TestRouterReplicaReadStaysOff proves the fan-out is reserved for
// degraded primaries: with every backend healthy, the whole query mix
// takes the sequential path and the fanout counter stays zero.
func TestRouterReplicaReadStaysOff(t *testing.T) {
	f := newFleet(t, 3, Config{})
	defer f.close()
	for _, q := range queryMix() {
		f.get(t, q)
	}
	if n := f.router.replicaReads.Load(); n != 0 {
		t.Fatalf("replica fan-out engaged %d times on a healthy fleet", n)
	}
	// Mutating methods never fan out, even with the primary down.
	req := httptest.NewRequest("DELETE", "/v1/sweeps/nope", nil)
	if replicaReadable(req) {
		t.Fatal("a DELETE is never replica-readable")
	}
}
