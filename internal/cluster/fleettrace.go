package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"time"

	"linesearch/internal/telemetry"
	"linesearch/internal/telemetry/journal"
)

// routerProcess is the hop label for spans recorded by the router's
// own tracer in a stitched fleet trace.
const routerProcess = "router"

// debugTracesResponse mirrors the service's /debug/traces shape, so
// one scraper (human or the fleet stitcher) reads routers and backends
// identically.
type debugTracesResponse struct {
	Count  int                       `json:"count"`
	Sort   string                    `json:"sort"`
	Traces []telemetry.TraceSnapshot `json:"traces"`
}

// handleDebugTraces serves the router's own completed-trace ring,
// byte-compatible with the backends' endpoint.
//
//	GET /debug/traces?n=20&sort=recent    the n most recent traces
//	GET /debug/traces?n=20&sort=slowest   the n slowest traces
func (r *Router) handleDebugTraces(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	n := 20
	if raw := q.Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeJSONError(w, http.StatusBadRequest, "parameter n must be a positive integer")
			return
		}
		n = v
	}
	order := q.Get("sort")
	if order == "" {
		order = "recent"
	}
	traces := r.tracer.Traces()
	total := len(traces)
	switch order {
	case "recent":
		sort.Slice(traces, func(i, j int) bool { return traces[i].Start.After(traces[j].Start) })
	case "slowest":
		sort.Slice(traces, func(i, j int) bool {
			if traces[i].DurationSeconds != traces[j].DurationSeconds {
				return traces[i].DurationSeconds > traces[j].DurationSeconds
			}
			return traces[i].Start.After(traces[j].Start)
		})
	default:
		writeJSONError(w, http.StatusBadRequest, `parameter sort must be "recent" or "slowest"`)
		return
	}
	if len(traces) > n {
		traces = traces[:n]
	}
	if traces == nil {
		traces = []telemetry.TraceSnapshot{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(debugTracesResponse{Count: total, Sort: order, Traces: traces})
}

// FleetHop is one process's view of a stitched trace: the router or
// one backend, with that process's local trace tree.
type FleetHop struct {
	Process         string                  `json:"process"`
	DurationSeconds float64                 `json:"duration_seconds"`
	SpanCount       int                     `json:"span_count"`
	Trace           telemetry.TraceSnapshot `json:"trace"`
}

// FleetTrace is one trace id's hops merged across the fleet. Hops are
// ordered router-first, then backends by name, so the tree reads in
// request direction. SlowestHop names the backend hop with the largest
// local duration — where the wall-clock went — falling back to the
// router when the trace never left it.
type FleetTrace struct {
	TraceID           string     `json:"trace_id"`
	Start             time.Time  `json:"start"`
	DurationSeconds   float64    `json:"duration_seconds"`
	Processes         int        `json:"processes"`
	SlowestHop        string     `json:"slowest_hop"`
	SlowestHopSeconds float64    `json:"slowest_hop_seconds"`
	Hops              []FleetHop `json:"hops"`
}

// fleetTracesResponse answers GET /debug/fleet-traces.
type fleetTracesResponse struct {
	// Count is the number of distinct trace ids seen across the fleet
	// (before the n cut).
	Count int `json:"count"`
	// Scraped lists the backends whose rings were merged; Errors maps a
	// backend that could not be scraped to the reason (a dead shard must
	// not make the debugging endpoint itself fail).
	Scraped []string          `json:"scraped"`
	Errors  map[string]string `json:"errors,omitempty"`
	Traces  []FleetTrace      `json:"traces"`
}

// handleFleetTraces scrapes every backend's /debug/traces ring, merges
// it with the router's own, and groups spans by trace id: the stitched
// cross-process view. One traced request shows up as a router hop (the
// proxy root with its forward legs) plus one hop per backend the
// traceparent reached.
//
//	GET /debug/fleet-traces?n=20            the n most recent stitched traces
//	GET /debug/fleet-traces?trace=<id>      one trace id only
//	GET /debug/fleet-traces?scrape_n=64     per-process ring depth to fetch
func (r *Router) handleFleetTraces(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	n := 20
	if raw := q.Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeJSONError(w, http.StatusBadRequest, "parameter n must be a positive integer")
			return
		}
		n = v
	}
	scrapeN := 64
	if raw := q.Get("scrape_n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeJSONError(w, http.StatusBadRequest, "parameter scrape_n must be a positive integer")
			return
		}
		scrapeN = v
	}
	wantID := q.Get("trace")

	r.mu.RLock()
	backends := make([]*backend, 0, len(r.backends))
	for _, b := range r.backends {
		backends = append(backends, b)
	}
	r.mu.RUnlock()
	sort.Slice(backends, func(i, j int) bool { return backends[i].name < backends[j].name })

	type scraped struct {
		process string
		traces  []telemetry.TraceSnapshot
		err     error
	}
	results := make([]scraped, len(backends))
	done := make(chan int, len(backends))
	for i, b := range backends {
		i, b := i, b
		go func() {
			traces, err := r.scrapeTraces(req, b, scrapeN)
			results[i] = scraped{process: b.name, traces: traces, err: err}
			done <- i
		}()
	}
	for range backends {
		<-done
	}

	resp := fleetTracesResponse{Scraped: make([]string, 0, len(backends))}
	byID := make(map[string]*FleetTrace)
	add := func(process string, traces []telemetry.TraceSnapshot) {
		for _, tr := range traces {
			if wantID != "" && tr.TraceID != wantID {
				continue
			}
			ft, ok := byID[tr.TraceID]
			if !ok {
				ft = &FleetTrace{TraceID: tr.TraceID, Start: tr.Start}
				byID[tr.TraceID] = ft
			}
			if tr.Start.Before(ft.Start) {
				ft.Start = tr.Start
			}
			ft.Hops = append(ft.Hops, FleetHop{
				Process:         process,
				DurationSeconds: tr.DurationSeconds,
				SpanCount:       tr.SpanCount,
				Trace:           tr,
			})
		}
	}
	// The router's ring first: its hop sorts to the front of every
	// stitched trace, and its root span bounds the whole request.
	add(routerProcess, r.tracer.Traces())
	for _, res := range results {
		if res.err != nil {
			if resp.Errors == nil {
				resp.Errors = make(map[string]string)
			}
			resp.Errors[res.process] = res.err.Error()
			continue
		}
		resp.Scraped = append(resp.Scraped, res.process)
		add(res.process, res.traces)
	}

	merged := make([]FleetTrace, 0, len(byID))
	for _, ft := range byID {
		sort.Slice(ft.Hops, func(i, j int) bool {
			hi, hj := ft.Hops[i], ft.Hops[j]
			if (hi.Process == routerProcess) != (hj.Process == routerProcess) {
				return hi.Process == routerProcess
			}
			return hi.Process < hj.Process
		})
		ft.Processes = len(ft.Hops)
		for _, hop := range ft.Hops {
			if hop.DurationSeconds > ft.DurationSeconds {
				ft.DurationSeconds = hop.DurationSeconds
			}
			if hop.Process == routerProcess {
				continue
			}
			if hop.DurationSeconds > ft.SlowestHopSeconds || ft.SlowestHop == "" {
				ft.SlowestHop = hop.Process
				ft.SlowestHopSeconds = hop.DurationSeconds
			}
		}
		if ft.SlowestHop == "" {
			// The trace never left the router (every attempt failed
			// before a backend sampled it, or the request was answered
			// locally): the router is the slowest — and only — hop.
			ft.SlowestHop = routerProcess
			ft.SlowestHopSeconds = ft.Hops[0].DurationSeconds
		}
		merged = append(merged, *ft)
	}
	sort.Slice(merged, func(i, j int) bool {
		if !merged[i].Start.Equal(merged[j].Start) {
			return merged[i].Start.After(merged[j].Start)
		}
		return merged[i].TraceID < merged[j].TraceID
	})
	resp.Count = len(merged)
	if len(merged) > n {
		merged = merged[:n]
	}
	resp.Traces = merged
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// scrapeTraces fetches one backend's recent completed traces.
func (r *Router) scrapeTraces(req *http.Request, b *backend, n int) ([]telemetry.TraceSnapshot, error) {
	url := fmt.Sprintf("%s/debug/traces?n=%d&sort=recent", b.base, n)
	out, err := http.NewRequestWithContext(req.Context(), http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.client.Do(out)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("scrape returned %s", resp.Status)
	}
	var body debugTracesResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, r.cfg.MaxResponseBody)).Decode(&body); err != nil {
		return nil, fmt.Errorf("decode scrape: %w", err)
	}
	return body.Traces, nil
}

// DebugHandler returns the router's operator debug surface for a
// separate loopback-only listener (linerouter's -debug-addr flag):
// net/http/pprof, the router's own trace ring, the stitched fleet
// view, the event journal, and the metrics/health endpoints. Never
// part of Handler() on the serving port — profiling endpoints can
// stall the process.
func (r *Router) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/traces", r.handleDebugTraces)
	mux.HandleFunc("/debug/fleet-traces", r.handleFleetTraces)
	mux.Handle("/debug/events", journal.Handler(r.journal))
	mux.HandleFunc("/metrics", r.handleMetrics)
	mux.HandleFunc("/healthz", r.handleHealthz)
	return mux
}
