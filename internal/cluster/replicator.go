package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"linesearch/internal/faultpoint"
	"linesearch/internal/sweep"
	"linesearch/internal/telemetry"
	"linesearch/internal/telemetry/journal"
)

// SweepsRingKey is the ring key the whole sweep API is pinned to —
// the router's routingPolicy and the replicator's owner placement must
// hash the same key, or a failed-over sweep request would land on a
// backend that never received the replicated checkpoints.
const SweepsRingKey = "sweeps"

// fpReplicate is the fault point on every replication send; the
// per-peer form fpReplicate+"."+<host:port> lets chaos schedules drop
// replication to exactly one backend, exercising hinted handoff.
const fpReplicate = "cluster.replicate"

// maxReplicaResponse bounds one fetched checkpoint or digest.
const maxReplicaResponse = 16 << 20

// ReplicatorConfig tunes a Replicator. Self and the three local
// accessors are required; everything else defaults.
type ReplicatorConfig struct {
	// Self is this backend's own advertised URL; it is excluded from
	// push targets (the home copy is already on disk here).
	Self string
	// RF is the total owners per sweep checkpoint, the home included —
	// the paper's f+1 rule with f = RF-1 (default 2: survive any one
	// crash).
	RF int
	// HintLimit bounds the per-peer handoff spool, in checkpoints.
	// Hints are latest-wins per job, so the spool holds at most one
	// entry per job; overflow drops the oldest job's hint and counts it
	// (default 64).
	HintLimit int
	// VNodes is the placement ring's virtual-node count (default
	// DefaultVNodes; must match the router's so owner walks agree).
	VNodes int
	// Timeout bounds one replication request (default 5s).
	Timeout time.Duration
	// Client performs the requests (default: a client with Timeout).
	Client *http.Client
	// Logger receives structured replication logs (default
	// slog.Default()).
	Logger *slog.Logger
	// Tracer, when set, roots a trace on each Replicate/AntiEntropy
	// call that arrives with an untraced context, so replication legs
	// show up in fleet-trace stitching even when driven by timers.
	Tracer *telemetry.Tracer
	// Journal, when set, receives hint and anti-entropy events
	// (nil-safe: a nil journal records nothing).
	Journal *journal.Journal

	// LocalDigest summarizes every checkpoint this backend holds (home
	// and replica), keyed by job ID — this side of an anti-entropy
	// comparison.
	LocalDigest func() map[string]sweep.CheckpointInfo
	// LoadLocal fetches a locally held checkpoint for pushing to a
	// lagging peer (missing is nil, nil).
	LoadLocal func(id string) (*sweep.Checkpoint, error)
	// Apply stores a checkpoint fetched from a peer that was ahead of
	// us (the replica-store put).
	Apply func(sweep.Checkpoint) error
}

// ReplicatorStats are the replication counters, exported on /metrics.
type ReplicatorStats struct {
	// Replicated counts checkpoints accepted by a peer; Failed counts
	// sends that errored after reaching for a live peer.
	Replicated int64 `json:"replicated"`
	Failed     int64 `json:"failed"`
	// Hinted counts checkpoints spooled for a down peer; HintsDropped
	// counts spool overflow evictions; HintsReplayed counts hints
	// delivered after the peer came back.
	Hinted        int64 `json:"hinted"`
	HintsDropped  int64 `json:"hints_dropped"`
	HintsReplayed int64 `json:"hints_replayed"`
	// HintsPending is the current spool size across peers.
	HintsPending int `json:"hints_pending"`
	// AntiEntropyRuns counts completed anti-entropy sweeps;
	// RepairsPushed/RepairsPulled count checkpoints moved to heal
	// divergence.
	AntiEntropyRuns int64 `json:"anti_entropy_runs"`
	RepairsPushed   int64 `json:"repairs_pushed"`
	RepairsPulled   int64 `json:"repairs_pulled"`
}

// Replicator streams fsynced sweep checkpoints to the next RF-1 ring
// owners, spools hints for peers that are down, and runs anti-entropy
// digest comparisons to repair divergence after partitions. It is the
// serving-layer analogue of the paper's fault budget: with RF = f+1,
// any f lost backends lose no completed sweep cell.
//
// Membership drives the target set: SetMembers replaces the alive
// peer list (from gossip or static topology). A checkpoint's owners
// are computed on the same ring geometry the router uses, so the
// backend a sweep fails over to is exactly the one holding its
// replica. Create with NewReplicator; safe for concurrent use.
type Replicator struct {
	cfg    ReplicatorConfig
	client *http.Client
	logger *slog.Logger

	mu    sync.Mutex
	ring  *Ring
	urls  map[string]string    // ring member (host:port) -> base URL
	hints map[string]hintSpool // ring member -> pending handoffs

	replicated    atomic.Int64
	failed        atomic.Int64
	hinted        atomic.Int64
	hintsDropped  atomic.Int64
	hintsReplayed atomic.Int64
	aeRuns        atomic.Int64
	repairsPushed atomic.Int64
	repairsPulled atomic.Int64
}

// hintSpool is one peer's pending handoffs: latest checkpoint per job,
// with FIFO order of first arrival for bounded eviction.
type hintSpool struct {
	byJob map[string]sweep.Checkpoint
	order []string
}

// NewReplicator builds a Replicator. The member set starts empty;
// call SetMembers before the first Replicate.
func NewReplicator(cfg ReplicatorConfig) (*Replicator, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: replicator needs its own URL")
	}
	if cfg.LocalDigest == nil || cfg.LoadLocal == nil || cfg.Apply == nil {
		return nil, fmt.Errorf("cluster: replicator needs LocalDigest, LoadLocal and Apply")
	}
	if _, err := memberName(cfg.Self); err != nil {
		return nil, err
	}
	if cfg.RF < 2 {
		cfg.RF = 2
	}
	if cfg.HintLimit < 1 {
		cfg.HintLimit = 64
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: cfg.Timeout}
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	return &Replicator{
		cfg:    cfg,
		client: cfg.Client,
		logger: cfg.Logger,
		ring:   NewRing(cfg.VNodes),
		urls:   make(map[string]string),
		hints:  make(map[string]hintSpool),
	}, nil
}

// memberName maps a backend URL to its ring member name (host:port),
// matching the router's naming so owner walks agree.
func memberName(raw string) (string, error) {
	u, err := url.Parse(raw)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return "", fmt.Errorf("cluster: replicator peer url %q needs a scheme and host", raw)
	}
	return u.Host, nil
}

// SetMembers replaces the alive peer set (this backend included or
// not — Self is always implicitly a member). Hints for peers that are
// alive again are NOT replayed here: replay happens on the next
// Replicate to that peer or the next AntiEntropy pass, keeping this
// safe to call from a gossip callback.
func (r *Replicator) SetMembers(alive []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fresh := NewRing(r.cfg.VNodes)
	urls := make(map[string]string, len(alive)+1)
	for _, raw := range append([]string{r.cfg.Self}, alive...) {
		name, err := memberName(raw)
		if err != nil {
			r.logger.Warn("replicator ignoring bad member url", "url", raw, "err", err)
			continue
		}
		if _, dup := urls[name]; dup {
			continue
		}
		urls[name] = raw
		fresh.Add(name)
	}
	r.ring = fresh
	r.urls = urls
}

// Owners returns the ring members owning the sweep key right now, up
// to RF, in preference order — the home first.
func (r *Replicator) Owners() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.Owners(SweepsRingKey, r.cfg.RF)
}

// Replicate pushes one fsynced checkpoint to the RF-1 non-self owners
// of the sweeps key, synchronously. A peer that is not in the current
// member set, or that fails the push, gets the checkpoint spooled as a
// hint; any pending hints for a peer that just accepted a push are
// replayed while it is known reachable. Returns the number of live
// replicas that accepted the checkpoint.
func (r *Replicator) Replicate(ctx context.Context, cp sweep.Checkpoint) int {
	if telemetry.SpanFrom(ctx) == nil && r.cfg.Tracer != nil {
		var root *telemetry.Span
		ctx, root = r.cfg.Tracer.StartRequest(ctx, "replicate", "")
		if root != nil {
			root.SetStr("job", cp.ID)
			defer root.End()
		}
	}
	selfName, _ := memberName(r.cfg.Self)
	r.mu.Lock()
	owners := r.ring.Owners(SweepsRingKey, r.cfg.RF)
	targets := make(map[string]string, len(owners)) // member -> url
	for _, name := range owners {
		if name == selfName {
			continue
		}
		targets[name] = r.urls[name]
	}
	r.mu.Unlock()

	accepted := 0
	for _, target := range sortedByKey(targets) {
		if err := r.push(ctx, target.url, cp); err != nil {
			r.failed.Add(1)
			r.logger.Warn("checkpoint replication failed; hinting",
				"job", cp.ID, "peer", target.name, "err", err)
			r.hint(ctx, target.name, cp)
			continue
		}
		r.replicated.Add(1)
		accepted++
		r.replayHints(ctx, target.name, target.url)
	}
	return accepted
}

// sortedByKey iterates a member->url map deterministically.
type namedTarget struct{ name, url string }

func sortedByKey(m map[string]string) []namedTarget {
	out := make([]namedTarget, 0, len(m))
	for name, u := range m {
		out = append(out, namedTarget{name, u})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// push PUTs one checkpoint to a peer's replica endpoint.
func (r *Replicator) push(ctx context.Context, baseURL string, cp sweep.Checkpoint) error {
	name, _ := memberName(baseURL)
	if err := faultpoint.Hit(fpReplicate); err != nil {
		return err
	}
	if err := faultpoint.Hit(fpReplicate + "." + name); err != nil {
		return err
	}
	if baseURL == "" {
		return fmt.Errorf("cluster: peer %s is not in the member set", name)
	}
	blob, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("cluster: marshal checkpoint: %w", err)
	}
	ctx, cancel := context.WithTimeout(ctx, r.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		baseURL+"/v1/replica/checkpoints/"+url.PathEscape(cp.ID), bytes.NewReader(blob))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if tp := telemetry.Traceparent(ctx); tp != "" {
		req.Header.Set("Traceparent", tp)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, maxReplicaResponse))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: peer %s answered %d", name, resp.StatusCode)
	}
	return nil
}

// hint spools a checkpoint for a currently unreachable peer,
// latest-wins per job, bounded by HintLimit per peer.
func (r *Replicator) hint(ctx context.Context, peer string, cp sweep.Checkpoint) {
	r.mu.Lock()
	spool, ok := r.hints[peer]
	if !ok {
		spool = hintSpool{byJob: make(map[string]sweep.Checkpoint)}
	}
	var dropped string
	if _, held := spool.byJob[cp.ID]; !held {
		if len(spool.order) >= r.cfg.HintLimit {
			dropped = spool.order[0]
			spool.order = spool.order[1:]
			delete(spool.byJob, dropped)
			r.hintsDropped.Add(1)
		}
		spool.order = append(spool.order, cp.ID)
	}
	spool.byJob[cp.ID] = cp
	r.hints[peer] = spool
	r.hinted.Add(1)
	r.mu.Unlock()
	if dropped != "" {
		r.logger.Warn("hint spool full; dropped oldest", "peer", peer, "job", dropped)
		r.cfg.Journal.Record(ctx, journal.HintDrop, peer, "spool full, dropped job "+dropped)
	}
	r.cfg.Journal.Record(ctx, journal.HintSpool, peer, "job "+cp.ID)
}

// takeHints drains a peer's spool for replay.
func (r *Replicator) takeHints(peer string) []sweep.Checkpoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	spool, ok := r.hints[peer]
	if !ok {
		return nil
	}
	delete(r.hints, peer)
	out := make([]sweep.Checkpoint, 0, len(spool.order))
	for _, id := range spool.order {
		out = append(out, spool.byJob[id])
	}
	return out
}

// replayHints delivers a peer's spooled checkpoints now that it is
// reachable; anything that fails again goes straight back on the
// spool.
func (r *Replicator) replayHints(ctx context.Context, peer, baseURL string) {
	for _, cp := range r.takeHints(peer) {
		if err := r.push(ctx, baseURL, cp); err != nil {
			r.logger.Warn("hint replay failed; re-spooling", "peer", peer, "job", cp.ID, "err", err)
			r.hint(ctx, peer, cp)
			continue
		}
		r.hintsReplayed.Add(1)
		r.cfg.Journal.Record(ctx, journal.HintReplay, peer, "job "+cp.ID)
	}
}

// peerDigest fetches a peer's combined home+replica digest.
func (r *Replicator) peerDigest(ctx context.Context, baseURL string) (map[string]sweep.CheckpointInfo, error) {
	name, _ := memberName(baseURL)
	if err := faultpoint.Hit(fpReplicate); err != nil {
		return nil, err
	}
	if err := faultpoint.Hit(fpReplicate + "." + name); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(ctx, r.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/replica/digest", nil)
	if err != nil {
		return nil, err
	}
	if tp := telemetry.Traceparent(ctx); tp != "" {
		req.Header.Set("Traceparent", tp)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxReplicaResponse))
		return nil, fmt.Errorf("cluster: peer %s digest answered %d", name, resp.StatusCode)
	}
	var body struct {
		Home    map[string]sweep.CheckpointInfo `json:"home"`
		Replica map[string]sweep.CheckpointInfo `json:"replica"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxReplicaResponse)).Decode(&body); err != nil {
		return nil, err
	}
	merged := make(map[string]sweep.CheckpointInfo, len(body.Home)+len(body.Replica))
	for id, info := range body.Replica {
		merged[id] = info
	}
	for id, info := range body.Home {
		// The home copy wins a tie: it is the authoritative writer.
		if held, ok := merged[id]; !ok || info.Newer(held) || info.Checksum == held.Checksum {
			merged[id] = info
		}
	}
	return merged, nil
}

// fetch GETs one checkpoint from a peer.
func (r *Replicator) fetch(ctx context.Context, baseURL, id string) (*sweep.Checkpoint, error) {
	ctx, cancel := context.WithTimeout(ctx, r.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		baseURL+"/v1/replica/checkpoints/"+url.PathEscape(id), nil)
	if err != nil {
		return nil, err
	}
	if tp := telemetry.Traceparent(ctx); tp != "" {
		req.Header.Set("Traceparent", tp)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxReplicaResponse))
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxReplicaResponse))
		return nil, fmt.Errorf("cluster: peer checkpoint answered %d", resp.StatusCode)
	}
	var cp sweep.Checkpoint
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxReplicaResponse)).Decode(&cp); err != nil {
		return nil, err
	}
	if err := cp.Verify(); err != nil {
		return nil, err
	}
	return &cp, nil
}

// AntiEntropy runs one repair pass against every non-self owner of
// the sweeps key: replay pending hints, compare digests, push local
// checkpoints the peer lacks or holds stale, and pull peer checkpoints
// that are ahead of ours. Returns the number of repairs (pushed plus
// pulled). Divergence after a healed partition converges in one pass
// from each side.
func (r *Replicator) AntiEntropy(ctx context.Context) int {
	if telemetry.SpanFrom(ctx) == nil && r.cfg.Tracer != nil {
		var root *telemetry.Span
		ctx, root = r.cfg.Tracer.StartRequest(ctx, "anti-entropy", "")
		if root != nil {
			defer root.End()
		}
	}
	selfName, _ := memberName(r.cfg.Self)
	r.mu.Lock()
	owners := r.ring.Owners(SweepsRingKey, r.cfg.RF)
	targets := make(map[string]string, len(owners))
	for _, name := range owners {
		if name != selfName {
			targets[name] = r.urls[name]
		}
	}
	r.mu.Unlock()

	repairs := 0
	for _, target := range sortedByKey(targets) {
		if target.url == "" {
			continue
		}
		r.replayHints(ctx, target.name, target.url)
		theirs, err := r.peerDigest(ctx, target.url)
		if err != nil {
			r.logger.Warn("anti-entropy digest failed", "peer", target.name, "err", err)
			continue
		}
		ours := r.cfg.LocalDigest()
		for id, mine := range ours {
			held, ok := theirs[id]
			if ok && (held.Checksum == mine.Checksum || !mine.Newer(held)) {
				continue
			}
			cp, err := r.cfg.LoadLocal(id)
			if err != nil || cp == nil {
				continue
			}
			if err := r.push(ctx, target.url, *cp); err != nil {
				r.logger.Warn("anti-entropy push failed", "peer", target.name, "job", id, "err", err)
				continue
			}
			r.repairsPushed.Add(1)
			repairs++
			r.cfg.Journal.Record(ctx, journal.AntiEntropyRepair, target.name, "pushed job "+id)
		}
		for id, held := range theirs {
			mine, ok := ours[id]
			if ok && (mine.Checksum == held.Checksum || !held.Newer(mine)) {
				continue
			}
			cp, err := r.fetch(ctx, target.url, id)
			if err != nil || cp == nil {
				continue
			}
			if err := r.cfg.Apply(*cp); err != nil {
				r.logger.Warn("anti-entropy apply failed", "peer", target.name, "job", id, "err", err)
				continue
			}
			r.repairsPulled.Add(1)
			repairs++
			r.cfg.Journal.Record(ctx, journal.AntiEntropyRepair, target.name, "pulled job "+id)
		}
	}
	r.aeRuns.Add(1)
	return repairs
}

// Stats snapshots the replication counters.
func (r *Replicator) Stats() ReplicatorStats {
	r.mu.Lock()
	pending := 0
	for _, spool := range r.hints {
		pending += len(spool.order)
	}
	r.mu.Unlock()
	return ReplicatorStats{
		Replicated:      r.replicated.Load(),
		Failed:          r.failed.Load(),
		Hinted:          r.hinted.Load(),
		HintsDropped:    r.hintsDropped.Load(),
		HintsReplayed:   r.hintsReplayed.Load(),
		HintsPending:    pending,
		AntiEntropyRuns: r.aeRuns.Load(),
		RepairsPushed:   r.repairsPushed.Load(),
		RepairsPulled:   r.repairsPulled.Load(),
	}
}
