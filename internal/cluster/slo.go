package cluster

import (
	"net/http"
	"sync/atomic"
	"time"
)

// sloWindows are the burn-rate evaluation windows, shortest first. The
// classic multi-window rule: the short window catches a fast burn
// (page now), the long window catches a slow leak (ticket), and
// requiring both to fire suppresses flapping.
var sloWindows = []struct {
	label string
	d     time.Duration
}{
	{"5m", 5 * time.Minute},
	{"1h", time.Hour},
}

// sloBuckets is one ring slot per minute of the longest window.
const sloBuckets = 61

// sloBucket is one minute of routed-request outcomes. The minute stamp
// is stored alongside the counters so a slot left over from an earlier
// hour reads as empty instead of leaking stale counts into a window.
type sloBucket struct {
	minute   atomic.Int64 // unix minute this slot currently belongs to
	requests atomic.Int64
	errors   atomic.Int64 // 5xx answers to the client
	slow     atomic.Int64 // latency over the budget
}

// sloMonitor aggregates per-minute outcome counts and computes
// error-rate and latency-budget burn rates over the multi-window set.
// Burn rate is the standard SRE definition: the fraction of the error
// budget consumed per unit time, normalized so 1.0 means "burning
// exactly at the rate the objective allows" —
//
//	burn = badFraction / (1 - objective)
//
// A 99% objective with 2% of requests failing burns at 2.0: the budget
// is gone in half the period. Counting is lock-free (atomics on a
// fixed ring); the reset race at a minute boundary can lose a handful
// of observations, which is noise at SLO horizons.
type sloMonitor struct {
	objective float64       // fraction of requests that must be good
	budget    time.Duration // latency budget per request
	now       func() time.Time
	buckets   [sloBuckets]sloBucket
}

// newSLOMonitor applies defaults: 99% objective, 250ms latency budget.
func newSLOMonitor(objective float64, budget time.Duration, now func() time.Time) *sloMonitor {
	if objective <= 0 || objective >= 1 {
		objective = 0.99
	}
	if budget <= 0 {
		budget = 250 * time.Millisecond
	}
	if now == nil {
		now = time.Now
	}
	return &sloMonitor{objective: objective, budget: budget, now: now}
}

// observe records one routed request's final client-visible outcome.
func (m *sloMonitor) observe(status int, elapsed time.Duration) {
	minute := m.now().Unix() / 60
	b := &m.buckets[minute%sloBuckets]
	if got := b.minute.Load(); got != minute {
		// First writer of a new minute claims the slot and clears it.
		// A racing observer from the stale minute may add one count to
		// the fresh slot (or lose one) — tolerated, see type comment.
		if b.minute.CompareAndSwap(got, minute) {
			b.requests.Store(0)
			b.errors.Store(0)
			b.slow.Store(0)
		}
	}
	b.requests.Add(1)
	if status >= http.StatusInternalServerError {
		b.errors.Add(1)
	}
	if elapsed > m.budget {
		b.slow.Add(1)
	}
}

// window sums the buckets falling inside the last d.
func (m *sloMonitor) window(d time.Duration) (requests, errors, slow int64) {
	nowMinute := m.now().Unix() / 60
	span := int64(d / time.Minute)
	if span < 1 {
		span = 1
	}
	for i := range m.buckets {
		b := &m.buckets[i]
		minute := b.minute.Load()
		if minute > nowMinute-span && minute <= nowMinute {
			requests += b.requests.Load()
			errors += b.errors.Load()
			slow += b.slow.Load()
		}
	}
	return requests, errors, slow
}

// SLOWindow is one window's burn reading on /healthz and /metrics.
type SLOWindow struct {
	Window          string  `json:"window"`
	Requests        int64   `json:"requests"`
	ErrorRate       float64 `json:"error_rate"`
	ErrorBurnRate   float64 `json:"error_burn_rate"`
	SlowRate        float64 `json:"slow_rate"`
	LatencyBurnRate float64 `json:"latency_burn_rate"`
}

// SLOStats is the monitor's snapshot.
type SLOStats struct {
	Objective            float64     `json:"objective"`
	LatencyBudgetSeconds float64     `json:"latency_budget_seconds"`
	Windows              []SLOWindow `json:"windows"`
}

// snapshot evaluates every window.
func (m *sloMonitor) snapshot() SLOStats {
	st := SLOStats{
		Objective:            m.objective,
		LatencyBudgetSeconds: m.budget.Seconds(),
		Windows:              make([]SLOWindow, 0, len(sloWindows)),
	}
	budgetFraction := 1 - m.objective
	for _, w := range sloWindows {
		requests, errors, slow := m.window(w.d)
		win := SLOWindow{Window: w.label, Requests: requests}
		if requests > 0 {
			win.ErrorRate = float64(errors) / float64(requests)
			win.SlowRate = float64(slow) / float64(requests)
			win.ErrorBurnRate = win.ErrorRate / budgetFraction
			win.LatencyBurnRate = win.SlowRate / budgetFraction
		}
		st.Windows = append(st.Windows, win)
	}
	return st
}

// sloRecorder captures the status the proxy handler finally wrote, so
// the monitor observes the client-visible outcome (after retries,
// failover and replica reads), not any individual backend attempt.
type sloRecorder struct {
	http.ResponseWriter
	status int
}

func (r *sloRecorder) WriteHeader(status int) {
	if r.status == 0 {
		r.status = status
	}
	r.ResponseWriter.WriteHeader(status)
}

func (r *sloRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(p)
}
