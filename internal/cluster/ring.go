// Package cluster turns the single-process linesearchd daemon into a
// shardable fleet: a consistent-hash ring places every plan key on a
// backend, a thin HTTP router proxies /v1/* with health-aware retry
// that respects the service's 429/503 + Retry-After admission
// contract, and topology changes warm-transfer hot plan-cache entries
// so a joining shard serves its keys without recompiling them.
//
// The design carries the paper's framing from robots to replicas: the
// fleet must keep answering while up to f backends are crashed or
// slow. Health probes use a quorum-style voting rule (a backend is
// quarantined only after a configurable number of consecutive failed
// votes, the detection rule of the Byzantine follow-up work), and the
// per-backend circuit breaker is fed by the same telemetry histograms
// the metrics surface exports.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per backend. 160 points per
// member keeps the key distribution across 2–64 backends within the
// bound the ring property tests pin (see ring_test.go) while keeping
// topology rebuilds cheap.
const DefaultVNodes = 160

// ringPoint is one virtual node: a position on the 64-bit ring owned
// by a member.
type ringPoint struct {
	hash   uint64
	member string
}

// Ring is a consistent-hash ring with virtual nodes. Keys and members
// hash onto the same 64-bit circle; a key belongs to the first member
// point at or clockwise after its hash. Adding or removing one member
// therefore remaps only the arcs adjacent to that member's points —
// about 1/N of the keyspace — instead of reshuffling everything, which
// is what keeps warm caches warm across topology changes.
//
// Ring is immutable-after-build in spirit: mutations rebuild the
// sorted point slice. It is not safe for concurrent mutation; the
// router guards it with its own lock.
type Ring struct {
	vnodes  int
	members map[string]bool
	points  []ringPoint
}

// NewRing returns an empty ring with the given virtual-node count per
// member (vnodes < 1 uses DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]bool)}
}

// hash64 maps a string uniformly onto the ring. SHA-256 (truncated to
// 64 bits) rather than a cheap multiplicative hash: ring placement is
// computed once per request and once per vnode per topology change,
// and uniformity is what the balance bound rests on.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a member (idempotent) and rebuilds the point set.
func (r *Ring) Add(member string) {
	if r.members[member] {
		return
	}
	r.members[member] = true
	r.rebuild()
}

// Remove deletes a member (unknown members are a no-op) and rebuilds
// the point set.
func (r *Ring) Remove(member string) {
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	r.rebuild()
}

// rebuild regenerates the sorted point slice from the member set.
func (r *Ring) rebuild() {
	r.points = r.points[:0]
	for member := range r.members {
		for i := 0; i < r.vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash:   hash64(member + "#" + strconv.Itoa(i)),
				member: member,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A 64-bit collision between vnode points is vanishingly rare
		// but must not make placement depend on map iteration order.
		return r.points[i].member < r.points[j].member
	})
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Members returns the sorted member list.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Owner returns the member owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns up to n distinct members in preference order for
// key: the owner first, then the successive distinct members walking
// clockwise. This is the router's failover order — deterministic for
// a key, so retries of the same request always walk the same path.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n < 1 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}

// String describes the ring for logs.
func (r *Ring) String() string {
	return fmt.Sprintf("ring(%d members, %d vnodes)", len(r.members), r.vnodes)
}
