package cluster

// The partition chaos suite: the replication layer under the failures
// it exists for. Every test is deterministic — partitions are injected
// with fault points, health voting is driven by explicit ProbeAll
// calls, and sweep evaluation is pure — so a failure replays exactly.
//
// The three invariants pinned here are the fleet's durability
// contract:
//
//  1. Killing the sweep home mid-run loses zero cells: the job's
//     checkpoints already live on the replica owner, and a resubmit
//     through the router lands there and resumes.
//  2. Replicas converge after a partition heals: hinted handoff and
//     anti-entropy leave every owner holding byte-identical
//     checkpoints (equal checksums), with no hints left pending.
//  3. Reads proxied through a degraded fleet stay byte-identical to a
//     healthy single process: failover changes which backend answers,
//     never what it answers.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"linesearch/internal/faultpoint"
	"linesearch/internal/service"
	"linesearch/internal/sweep"
	"linesearch/internal/telemetry/journal"
)

// nodeEvents fetches one node's /debug/events, optionally filtered by
// kind, through the same HTTP surface an operator (or the CI artifact
// dump) uses.
func nodeEvents(t *testing.T, n *replicaNode, kind string) []journal.Event {
	t.Helper()
	url := n.srv.URL + "/debug/events"
	if kind != "" {
		url += "?kind=" + kind
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET /debug/events: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET /debug/events: %s: %s", resp.Status, body)
	}
	var out struct {
		Events []journal.Event `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode events: %v", err)
	}
	return out.Events
}

// firstSeq returns the lowest Seq among events (0 when empty).
func firstSeq(events []journal.Event) uint64 {
	var min uint64
	for _, e := range events {
		if min == 0 || e.Seq < min {
			min = e.Seq
		}
	}
	return min
}

// chaosTweak makes a replica node's sweeps killable mid-flight: every
// completed cell is checkpointed (and therefore replicated) before the
// next starts, and evaluation is slowed so a cancel lands while the
// job is genuinely running.
func chaosTweak(c *sweep.Config) {
	c.CheckpointEvery = 1
	c.Eval = func(ctx context.Context, p sweep.CellParams) sweep.Cell {
		time.Sleep(2 * time.Millisecond)
		return sweep.EvalCell(ctx, p)
	}
}

// submitSpec runs spec on node n and waits for the terminal state.
func submitSpec(t *testing.T, n *replicaNode, spec sweep.Spec) string {
	t.Helper()
	j, err := n.mgr.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-j.Done()
	if st := j.Status(); st.State != sweep.StateDone {
		t.Fatalf("sweep finished %s: %+v", st.State, st)
	}
	return j.ID()
}

// TestPartitionKillHomeMidSweepZeroLoss is the acceptance test: a
// sweep is submitted through the router, its home backend is killed
// mid-run, and resubmitting the same spec through the router completes
// the job with zero lost cells — the replica owner recovers every
// checkpointed cell from its replica store and computes only the rest.
func TestPartitionKillHomeMidSweepZeroLoss(t *testing.T) {
	defer faultpoint.Reset()
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))

	nodes := make([]*replicaNode, 3)
	urls := make([]string, 3)
	byHost := make(map[string]*replicaNode, 3)
	for i := range nodes {
		nodes[i] = newReplicaNode(t, chaosTweak)
		defer nodes[i].close()
		urls[i] = nodes[i].srv.URL
		host, err := memberName(urls[i])
		if err != nil {
			t.Fatalf("memberName: %v", err)
		}
		byHost[host] = nodes[i]
	}
	for _, n := range nodes {
		n.rep.SetMembers(urls)
	}

	// QuarantineVotes 1: one failed probe marks a dead backend down,
	// standing in for the health loop having noticed the corpse.
	router, err := New(Config{
		Backends:        urls,
		HealthInterval:  -1,
		QuarantineVotes: 1,
		Logger:          quiet,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer router.Close()
	frontend := httptest.NewServer(router.Handler())
	defer frontend.Close()

	// The router pins the whole sweep API to the sweeps ring key, and
	// the replicator places replicas with the same key on the same
	// ring: the backend the router fails over to IS the replica owner.
	router.mu.RLock()
	owners := router.ring.Owners(SweepsRingKey, 2)
	router.mu.RUnlock()
	if len(owners) != 2 {
		t.Fatalf("owner walk = %v, want 2 owners", owners)
	}
	home, replica := byHost[owners[0]], byHost[owners[1]]

	spec := sweep.Spec{N: []int{2, 3, 4, 5, 6}, F: []int{1}, XMax: 8}
	blob, _ := json.Marshal(spec)
	submit := func() service.SweepSubmitResponse {
		t.Helper()
		resp, err := http.Post(frontend.URL+"/v1/sweeps", "application/json", bytes.NewReader(blob))
		if err != nil {
			t.Fatalf("submit via router: %v", err)
		}
		defer resp.Body.Close()
		var out service.SweepSubmitResponse
		if resp.StatusCode != http.StatusAccepted {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("submit via router: %s: %s", resp.Status, body)
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
		return out
	}

	id := submit().Status.ID
	j, ok := home.mgr.Get(id)
	if !ok {
		t.Fatalf("job %s did not land on the ring owner %s", id, owners[0])
	}

	// Kill once at least one cell is checkpointed but (with ~2ms cells)
	// almost surely mid-run. Cancel is the in-process stand-in for
	// process death; the interrupted final checkpoint still replicates,
	// exactly as a real crash's last fsynced checkpoint already did.
	for j.Status().DoneCells == 0 && j.Status().State != sweep.StateDone {
		time.Sleep(time.Millisecond)
	}
	j.Cancel()
	<-j.Done()
	first := j.Status()
	if first.DoneCells == 0 {
		t.Fatal("kill landed before any cell completed; nothing to lose")
	}
	if rcp, err := replica.store.Get(id); err != nil || rcp == nil {
		t.Fatalf("replica owner missing the checkpoint at kill time: %v, %v", rcp, err)
	}

	home.srv.Close()
	router.ProbeAll() // one failed vote quarantines the corpse

	// The resubmission routes to the next owner on the sweeps walk —
	// the replica owner — which recovers the checkpoint from its
	// replica store and finishes the job.
	second := submit()
	if second.Status.ID != id {
		t.Fatalf("resubmit produced job %s, want %s", second.Status.ID, id)
	}
	if _, ok := replica.mgr.Get(id); !ok {
		t.Fatalf("resubmit did not land on the replica owner %s", owners[1])
	}
	if !second.Resumed {
		t.Fatal("replica owner started from scratch; checkpointed cells were lost")
	}

	deadline := time.Now().Add(30 * time.Second)
	var final sweep.Status
	for {
		resp, err := http.Get(frontend.URL + "/v1/sweeps/" + id)
		if err != nil {
			t.Fatalf("status via router: %v", err)
		}
		err = json.NewDecoder(resp.Body).Decode(&final)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode status: %v", err)
		}
		if final.State == sweep.StateDone || final.State == sweep.StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resumed sweep did not finish: %+v", final)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Zero lost cells: everything checkpointed before the kill was
	// resumed, not recomputed, and the job completed every cell.
	if final.State != sweep.StateDone || final.DoneCells != final.TotalCells || final.CellErrors != 0 {
		t.Fatalf("resumed sweep degraded: %+v", final)
	}
	if final.ResumedCells != first.DoneCells {
		t.Errorf("resumed %d cells, home had checkpointed %d", final.ResumedCells, first.DoneCells)
	}
	if got := replica.mgr.Stats().ReplicasRecovered; got != 1 {
		t.Errorf("ReplicasRecovered = %d, want 1", got)
	}
	if code, _ := routerGet(t, frontend.URL, "/v1/sweeps/"+id+"/result"); code != http.StatusOK {
		t.Errorf("result via router returned %d after recovery", code)
	}
}

// routerGet issues one GET against a base URL and returns status+body.
func routerGet(t *testing.T, base, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, body
}

// TestPartitionSplitBrainReplicasConverge cuts the replication link in
// both directions, runs a different sweep on each side of the split,
// heals, and requires anti-entropy to leave both owners holding
// byte-identical checkpoints for both jobs with no hints pending.
func TestPartitionSplitBrainReplicasConverge(t *testing.T) {
	defer faultpoint.Reset()
	a, b := newReplicaNode(t), newReplicaNode(t)
	defer a.close()
	defer b.close()
	members := []string{a.srv.URL, b.srv.URL}
	a.rep.SetMembers(members)
	b.rep.SetMembers(members)

	aHost, _ := memberName(a.srv.URL)
	bHost, _ := memberName(b.srv.URL)
	faultpoint.Arm(fpReplicate+"."+aHost, faultpoint.Rule{})
	faultpoint.Arm(fpReplicate+"."+bHost, faultpoint.Rule{})

	id1 := submitSpec(t, a, sweep.Spec{N: []int{3}, F: []int{1}, XMax: 8})
	id2 := submitSpec(t, b, sweep.Spec{N: []int{4}, F: []int{1}, XMax: 8})

	// The split held: neither side saw the other's checkpoints.
	if cp, _ := b.store.Get(id1); cp != nil {
		t.Fatal("split-brain leaked a's checkpoint to b")
	}
	if cp, _ := a.store.Get(id2); cp != nil {
		t.Fatal("split-brain leaked b's checkpoint to a")
	}

	faultpoint.Reset()
	a.rep.AntiEntropy(context.Background())
	b.rep.AntiEntropy(context.Background())

	// Rejoined: every owner holds every job at the home checksum.
	for _, c := range []struct {
		id    string
		home  *replicaNode
		other *replicaNode
	}{{id1, a, b}, {id2, b, a}} {
		want, err := sweep.LoadCheckpoint(c.home.mgr.Dir(), c.id)
		if err != nil || want == nil {
			t.Fatalf("home checkpoint %s: %v, %v", c.id, want, err)
		}
		got, err := c.other.store.Get(c.id)
		if err != nil || got == nil {
			t.Fatalf("replica of %s missing after heal: %v, %v", c.id, got, err)
		}
		if got.Checksum != want.Checksum {
			t.Errorf("job %s: replica checksum %s != home %s", c.id, got.Checksum, want.Checksum)
		}
	}
	if st := a.rep.Stats(); st.HintsPending != 0 {
		t.Errorf("a still has %d hints pending after heal", st.HintsPending)
	}
	if st := b.rep.Stats(); st.HintsPending != 0 {
		t.Errorf("b still has %d hints pending after heal", st.HintsPending)
	}

	// The journal tells the same story, on both sides: hints spooled
	// while the split held, then the heal drained them — every replay
	// or anti-entropy repair strictly after the first spool.
	for name, n := range map[string]*replicaNode{"a": a, "b": b} {
		spooled := nodeEvents(t, n, "hint_spool")
		if len(spooled) == 0 {
			t.Errorf("%s journalled no hint_spool events during the split", name)
			continue
		}
		healed := append(nodeEvents(t, n, "hint_replay"), nodeEvents(t, n, "anti_entropy_repair")...)
		if len(healed) == 0 {
			t.Errorf("%s journalled no replay/repair events after the heal", name)
			continue
		}
		spoolStart := firstSeq(spooled)
		for _, e := range healed {
			if e.Seq <= spoolStart {
				t.Errorf("%s: %s event seq %d precedes the first hint_spool seq %d",
					name, e.Kind, e.Seq, spoolStart)
			}
		}
	}
}

// TestPartitionAsymmetricReplication arms the link in one direction
// only: b replicates to a normally while a's pushes to b spool as
// hints, and the heal drains them. One-way reachability — the nastier
// real-network failure — must not wedge either side.
func TestPartitionAsymmetricReplication(t *testing.T) {
	defer faultpoint.Reset()
	a, b := newReplicaNode(t), newReplicaNode(t)
	defer a.close()
	defer b.close()
	members := []string{a.srv.URL, b.srv.URL}
	a.rep.SetMembers(members)
	b.rep.SetMembers(members)

	bHost, _ := memberName(b.srv.URL)
	faultpoint.Arm(fpReplicate+"."+bHost, faultpoint.Rule{})

	id1 := submitSpec(t, a, sweep.Spec{N: []int{3}, F: []int{1}, XMax: 8})
	id2 := submitSpec(t, b, sweep.Spec{N: []int{4}, F: []int{1}, XMax: 8})

	// The healthy direction kept working through the partition.
	if cp, err := a.store.Get(id2); err != nil || cp == nil {
		t.Fatalf("b->a replication broke under an a->b partition: %v, %v", cp, err)
	}
	if cp, _ := b.store.Get(id1); cp != nil {
		t.Fatal("a->b push crossed the armed link")
	}
	if st := a.rep.Stats(); st.Hinted == 0 {
		t.Fatalf("a spooled no hints for the unreachable peer: %+v", st)
	}

	faultpoint.Reset()
	a.rep.AntiEntropy(context.Background())
	got, err := b.store.Get(id1)
	if err != nil || got == nil {
		t.Fatalf("hint replay did not land after heal: %v, %v", got, err)
	}
	want, _ := sweep.LoadCheckpoint(a.mgr.Dir(), id1)
	if want == nil || got.Checksum != want.Checksum {
		t.Fatal("replayed replica does not match the home checksum")
	}
	if st := a.rep.Stats(); st.HintsPending != 0 {
		t.Errorf("hints still pending after replay: %+v", st)
	}

	// Journal sequence on the partitioned side: spool during the
	// one-way cut, replay for the same job after the heal. The healthy
	// side never spooled.
	spooled := nodeEvents(t, a, "hint_spool")
	replayed := nodeEvents(t, a, "hint_replay")
	if len(spooled) == 0 || len(replayed) == 0 {
		t.Fatalf("a's journal missing the handoff story: %d spooled, %d replayed", len(spooled), len(replayed))
	}
	wantDetail := "job " + id1
	var sawSpool, sawReplay bool
	for _, e := range spooled {
		if e.Detail == wantDetail {
			sawSpool = true
		}
	}
	for _, e := range replayed {
		if e.Detail == wantDetail {
			sawReplay = true
			if e.Seq <= firstSeq(spooled) {
				t.Errorf("replay seq %d not after first spool seq %d", e.Seq, firstSeq(spooled))
			}
		}
	}
	if !sawSpool || !sawReplay {
		t.Errorf("journal does not name job %s in both spool and replay: spool=%v replay=%v",
			id1, sawSpool, sawReplay)
	}
	if got := nodeEvents(t, b, "hint_spool"); len(got) != 0 {
		t.Errorf("healthy side journalled %d hint_spool events", len(got))
	}
}

// TestPartitionRollingByteIdentity quarantines each backend in turn
// and drives the full query mix through the router every time: a
// degraded fleet must answer byte for byte what a healthy single
// process answers, for every query, at every stage of the roll.
func TestPartitionRollingByteIdentity(t *testing.T) {
	defer faultpoint.Reset()
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	single := service.New(service.Config{Logger: quiet})
	defer single.Close()
	ref := httptest.NewServer(single.Handler())
	defer ref.Close()

	f := newFleet(t, 3, Config{})
	queries := queryMix()
	reference := make(map[string][]byte, len(queries))
	for _, q := range queries {
		resp, err := http.Get(ref.URL + q)
		if err != nil {
			t.Fatalf("reference GET %s: %v", q, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reference GET %s: %s", q, resp.Status)
		}
		reference[q] = body
	}

	for i := range f.backends {
		name := f.backendName(i)
		f.router.mu.RLock()
		b := f.router.backends[name]
		f.router.mu.RUnlock()
		b.down.Store(true)
		faultpoint.Arm(fpForward+"."+name, faultpoint.Rule{})

		for _, q := range queries {
			code, got := f.get(t, q)
			if code != http.StatusOK {
				t.Fatalf("backend %d down: GET %s returned %d", i, q, code)
			}
			if !bytes.Equal(got, reference[q]) {
				t.Fatalf("backend %d down: GET %s differs from single-process\nrouter: %s\ndirect: %s",
					i, q, got, reference[q])
			}
		}

		faultpoint.Reset()
		b.down.Store(false)
	}
}
