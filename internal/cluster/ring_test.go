package cluster

import (
	"fmt"
	"testing"
)

// corpus returns 10k synthetic plan-key hashes, the keyspace the
// balance and reshuffle properties are measured over.
func corpus(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("plan-key-%d", i)
	}
	return keys
}

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("10.0.0.%d:8081", i+1)
	}
	return out
}

// TestRingBalance pins the distribution property: with DefaultVNodes
// virtual nodes, every backend's share of a 10k-key corpus stays
// within a factor of the ideal 1/N share, for every fleet size from 2
// to 64. The 0.45–1.8x bound is what 160 vnodes and a uniform 64-bit
// hash deliver with margin; tightening vnodes or swapping the hash
// must answer to this test.
func TestRingBalance(t *testing.T) {
	keys := corpus(10000)
	for n := 2; n <= 64; n *= 2 {
		r := NewRing(DefaultVNodes)
		for _, m := range members(n) {
			r.Add(m)
		}
		counts := make(map[string]int, n)
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		if len(counts) != n {
			t.Fatalf("n=%d: only %d members own keys", n, len(counts))
		}
		ideal := float64(len(keys)) / float64(n)
		for m, c := range counts {
			ratio := float64(c) / ideal
			if ratio < 0.45 || ratio > 1.8 {
				t.Errorf("n=%d: member %s owns %d keys (%.2fx ideal share, want 0.45–1.8x)", n, m, c, ratio)
			}
		}
	}
}

// TestRingMinimalReshuffleOnAdd pins the consistent-hashing property
// the warm transfer rests on: adding one backend to an N-member ring
// remaps about 1/(N+1) of the corpus and not a key more than ~1.5x
// that. A naive mod-N placement would remap nearly everything.
func TestRingMinimalReshuffleOnAdd(t *testing.T) {
	keys := corpus(10000)
	for _, n := range []int{2, 4, 8, 16, 32} {
		r := NewRing(DefaultVNodes)
		ms := members(n + 1)
		for _, m := range ms[:n] {
			r.Add(m)
		}
		before := make(map[string]string, len(keys))
		for _, k := range keys {
			before[k] = r.Owner(k)
		}
		r.Add(ms[n])
		moved := 0
		for _, k := range keys {
			owner := r.Owner(k)
			if owner != before[k] {
				moved++
				if owner != ms[n] {
					t.Fatalf("n=%d: key %s moved %s -> %s, not to the new member", n, k, before[k], owner)
				}
			}
		}
		expected := float64(len(keys)) / float64(n+1)
		if f := float64(moved); f > 1.5*expected {
			t.Errorf("n=%d: add remapped %d keys, want <= %.0f (1.5x the 1/(N+1) share)", n, moved, 1.5*expected)
		}
		if moved == 0 {
			t.Errorf("n=%d: add remapped nothing; the new member owns no keys", n)
		}
	}
}

// TestRingMinimalReshuffleOnRemove is the mirror property: removing
// one member only remaps the keys it owned, and every one of them.
func TestRingMinimalReshuffleOnRemove(t *testing.T) {
	keys := corpus(10000)
	for _, n := range []int{3, 8, 32} {
		r := NewRing(DefaultVNodes)
		ms := members(n)
		for _, m := range ms {
			r.Add(m)
		}
		before := make(map[string]string, len(keys))
		victimOwned := 0
		for _, k := range keys {
			before[k] = r.Owner(k)
			if before[k] == ms[0] {
				victimOwned++
			}
		}
		r.Remove(ms[0])
		moved := 0
		for _, k := range keys {
			owner := r.Owner(k)
			if owner != before[k] {
				moved++
				if before[k] != ms[0] {
					t.Fatalf("n=%d: key %s moved %s -> %s though its owner stayed", n, k, before[k], owner)
				}
			}
		}
		if moved != victimOwned {
			t.Errorf("n=%d: remove remapped %d keys, want exactly the victim's %d", n, moved, victimOwned)
		}
	}
}

// TestRingOwnersDeterministicFailover pins the failover walk: Owners
// yields distinct members, the first is Owner, and repeated calls
// agree — a retried request must walk the same path.
func TestRingOwnersDeterministicFailover(t *testing.T) {
	r := NewRing(DefaultVNodes)
	ms := members(5)
	for _, m := range ms {
		r.Add(m)
	}
	for _, k := range corpus(100) {
		owners := r.Owners(k, 5)
		if len(owners) != 5 {
			t.Fatalf("key %s: got %d owners, want 5", k, len(owners))
		}
		if owners[0] != r.Owner(k) {
			t.Fatalf("key %s: Owners[0] = %s, Owner = %s", k, owners[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("key %s: duplicate owner %s", k, o)
			}
			seen[o] = true
		}
		again := r.Owners(k, 5)
		for i := range owners {
			if owners[i] != again[i] {
				t.Fatalf("key %s: owner walk not deterministic at %d", k, i)
			}
		}
	}
}

// TestRingEdgeCases covers the empty ring, n clamping and idempotent
// mutation.
func TestRingEdgeCases(t *testing.T) {
	r := NewRing(0) // 0 falls back to DefaultVNodes
	if got := r.Owner("k"); got != "" {
		t.Fatalf("empty ring Owner = %q, want empty", got)
	}
	if got := r.Owners("k", 3); got != nil {
		t.Fatalf("empty ring Owners = %v, want nil", got)
	}
	r.Add("a:1")
	r.Add("a:1") // idempotent
	if r.Len() != 1 {
		t.Fatalf("Len = %d after duplicate Add", r.Len())
	}
	if got := r.Owners("k", 10); len(got) != 1 {
		t.Fatalf("Owners(n>members) = %v, want 1 member", got)
	}
	r.Remove("missing") // no-op
	r.Remove("a:1")
	if r.Len() != 0 || r.Owner("k") != "" {
		t.Fatalf("ring not empty after removing sole member")
	}
}
