package cluster

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fakeClock is an injectable monotonic clock for the SLO ring.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 30, 0, time.UTC)}
}

func windowByLabel(t *testing.T, st SLOStats, label string) SLOWindow {
	t.Helper()
	for _, w := range st.Windows {
		if w.Window == label {
			return w
		}
	}
	t.Fatalf("no %s window in %+v", label, st)
	return SLOWindow{}
}

// TestSLOBurnFormula pins the burn-rate definition: burn =
// badFraction / (1 - objective), so 1.0 means burning exactly at the
// rate the objective allows.
func TestSLOBurnFormula(t *testing.T) {
	clock := newFakeClock()
	m := newSLOMonitor(0.99, 250*time.Millisecond, clock.now)

	// 100 requests: 2 errors, 5 slow. Error rate 0.02 against a 0.01
	// budget burns at 2.0; slow rate 0.05 burns at 5.0.
	for i := 0; i < 100; i++ {
		status, lat := http.StatusOK, 10*time.Millisecond
		if i < 2 {
			status = http.StatusInternalServerError
		}
		if i >= 2 && i < 7 {
			lat = 400 * time.Millisecond
		}
		m.observe(status, lat)
	}
	st := m.snapshot()
	if st.Objective != 0.99 || st.LatencyBudgetSeconds != 0.25 {
		t.Fatalf("config echo wrong: %+v", st)
	}
	for _, label := range []string{"5m", "1h"} {
		w := windowByLabel(t, st, label)
		if w.Requests != 100 {
			t.Errorf("%s: requests = %d", label, w.Requests)
		}
		if math.Abs(w.ErrorBurnRate-2.0) > 1e-9 {
			t.Errorf("%s: error burn = %v, want 2.0", label, w.ErrorBurnRate)
		}
		if math.Abs(w.LatencyBurnRate-5.0) > 1e-9 {
			t.Errorf("%s: latency burn = %v, want 5.0", label, w.LatencyBurnRate)
		}
	}
}

// TestSLOWindowing proves the multi-window split: observations older
// than the short window drop out of its burn but stay in the long one,
// and observations past the long window vanish entirely.
func TestSLOWindowing(t *testing.T) {
	clock := newFakeClock()
	m := newSLOMonitor(0.99, 250*time.Millisecond, clock.now)

	// An all-error burst now...
	for i := 0; i < 10; i++ {
		m.observe(http.StatusInternalServerError, time.Millisecond)
	}
	short := windowByLabel(t, m.snapshot(), "5m")
	if short.Requests != 10 || short.ErrorBurnRate == 0 {
		t.Fatalf("burst not visible in 5m window: %+v", short)
	}

	// ...ages out of the 5m window but still burns the 1h budget.
	clock.advance(10 * time.Minute)
	m.observe(http.StatusOK, time.Millisecond) // fresh good minute
	st := m.snapshot()
	short = windowByLabel(t, st, "5m")
	long := windowByLabel(t, st, "1h")
	if short.Requests != 1 || short.ErrorBurnRate != 0 {
		t.Errorf("5m window still sees the aged burst: %+v", short)
	}
	if long.Requests != 11 || long.ErrorBurnRate == 0 {
		t.Errorf("1h window lost the burst: %+v", long)
	}

	// Past the long horizon, the burst is gone everywhere.
	clock.advance(2 * time.Hour)
	long = windowByLabel(t, m.snapshot(), "1h")
	if long.Requests != 0 || long.ErrorBurnRate != 0 {
		t.Errorf("burst survived 2h: %+v", long)
	}
}

// TestSLOSlotReuse drives the clock far enough that ring slots are
// reclaimed by later minutes: a stale slot must reset, not leak its
// old counts into the fresh minute.
func TestSLOSlotReuse(t *testing.T) {
	clock := newFakeClock()
	m := newSLOMonitor(0.99, 250*time.Millisecond, clock.now)
	m.observe(http.StatusInternalServerError, time.Second)
	// sloBuckets minutes later, the same slot index comes around again.
	clock.advance(sloBuckets * time.Minute)
	m.observe(http.StatusOK, time.Millisecond)
	w := windowByLabel(t, m.snapshot(), "5m")
	if w.Requests != 1 || w.ErrorRate != 0 || w.SlowRate != 0 {
		t.Errorf("reclaimed slot leaked stale counts: %+v", w)
	}
}

// TestSLODefaults pins the config guard rails.
func TestSLODefaults(t *testing.T) {
	m := newSLOMonitor(0, 0, nil)
	if m.objective != 0.99 || m.budget != 250*time.Millisecond {
		t.Errorf("defaults = %v/%v", m.objective, m.budget)
	}
	m = newSLOMonitor(1.5, -time.Second, nil)
	if m.objective != 0.99 || m.budget != 250*time.Millisecond {
		t.Errorf("out-of-range config not clamped: %v/%v", m.objective, m.budget)
	}
	if m.now == nil {
		t.Error("nil clock not defaulted")
	}
}

// TestSLORecorderCapturesFinalStatus proves the recorder reports what
// the client saw: explicit WriteHeader, implicit 200 on first Write,
// and first-write-wins on duplicate WriteHeader calls.
func TestSLORecorderCapturesFinalStatus(t *testing.T) {
	w := httptest.NewRecorder()
	rec := &sloRecorder{ResponseWriter: w}
	rec.WriteHeader(http.StatusBadGateway)
	rec.WriteHeader(http.StatusOK) // late second header must not win
	if rec.status != http.StatusBadGateway {
		t.Errorf("status = %d, want first WriteHeader", rec.status)
	}
	w = httptest.NewRecorder()
	rec = &sloRecorder{ResponseWriter: w}
	rec.Write([]byte("ok"))
	if rec.status != http.StatusOK {
		t.Errorf("implicit status = %d, want 200", rec.status)
	}
}

// TestRouterSLOEndToEnd checks the wiring: routed requests move the
// monitor, and the burn surfaces on /healthz and the Prometheus
// exposition.
func TestRouterSLOEndToEnd(t *testing.T) {
	f := newFleet(t, 2, Config{})
	for _, q := range []string{"/v1/plan?n=3&f=1", "/v1/plan?n=4&f=1", "/v1/plan?n=5&f=2"} {
		if code, _ := f.get(t, q); code != http.StatusOK {
			t.Fatalf("%s: %d", q, code)
		}
	}
	st := f.router.Stats()
	w := windowByLabel(t, st.SLO, "5m")
	if w.Requests != 3 {
		t.Fatalf("SLO monitor saw %d requests, want 3", w.Requests)
	}
	if w.ErrorBurnRate != 0 {
		t.Errorf("healthy fleet burns error budget: %+v", w)
	}
	code, body := f.get(t, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	for _, want := range []string{`"slo"`, `"error_burn_rate"`, `"window":"5m"`} {
		if !strings.Contains(string(body), want) {
			t.Errorf("healthz missing %s:\n%s", want, body)
		}
	}
	req := httptest.NewRequest("GET", "/metrics?format=prometheus", nil)
	rw := httptest.NewRecorder()
	f.router.Handler().ServeHTTP(rw, req)
	for _, want := range []string{
		`linerouter_slo_objective 0.99`,
		`linerouter_slo_error_burn_rate{window="5m"}`,
		`linerouter_slo_latency_burn_rate{window="1h"}`,
		`linerouter_slo_window_requests{window="5m"} 3`,
	} {
		if !strings.Contains(rw.Body.String(), want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}
