package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"linesearch/internal/telemetry"
)

// BackendStats is one backend's view in the router's metrics snapshot.
type BackendStats struct {
	Name        string                      `json:"name"`
	Available   bool                        `json:"available"`
	Quarantined bool                        `json:"quarantined"`
	BreakerOpen bool                        `json:"breaker_open"`
	Requests    int64                       `json:"requests"`
	Failures    int64                       `json:"failures"`
	ProbeFails  int64                       `json:"probe_fails"`
	Quarantines int64                       `json:"quarantines"`
	Latency     telemetry.HistogramSnapshot `json:"latency"`
}

// Stats is the router's metrics snapshot, served by GET /metrics.
type Stats struct {
	Backends []BackendStats `json:"backends"`
	Proxied  int64          `json:"proxied"`
	Retries  int64          `json:"retries"`
	// ReplicaReads counts pure reads fanned out to the key's owner
	// pair because the primary was unavailable.
	ReplicaReads int64 `json:"replica_fanout_reads"`
	ProxyErrors  int64 `json:"proxy_errors"`
	WarmRuns     int64 `json:"warm_transfer_runs"`
	WarmKeys     int64 `json:"warm_transfer_keys"`
	WarmErrors   int64 `json:"warm_transfer_errors"`
	// SLO is the multi-window burn-rate reading over routed requests.
	SLO SLOStats `json:"slo"`
	// JournalEvents counts recorded events per kind — every kind is
	// present, zero or not, so the Prometheus exposition registers a
	// counter per kind by construction.
	JournalEvents map[string]int64 `json:"journal_events"`
	// Tracer is the router's own trace-ring health (sampling, drops,
	// truncation).
	Tracer telemetry.TracerStats `json:"tracer"`
}

// Stats snapshots the router.
func (r *Router) Stats() Stats {
	r.mu.RLock()
	backends := make([]*backend, 0, len(r.backends))
	for _, b := range r.backends {
		backends = append(backends, b)
	}
	r.mu.RUnlock()
	sort.Slice(backends, func(i, j int) bool { return backends[i].name < backends[j].name })
	now := time.Now()
	st := Stats{
		Backends:      make([]BackendStats, 0, len(backends)),
		Proxied:       r.proxied.Load(),
		Retries:       r.retries.Load(),
		ReplicaReads:  r.replicaReads.Load(),
		ProxyErrors:   r.proxyErrs.Load(),
		WarmRuns:      r.warmRuns.Load(),
		WarmKeys:      r.warmKeys.Load(),
		WarmErrors:    r.warmErrors.Load(),
		SLO:           r.slo.snapshot(),
		JournalEvents: r.journal.Counts(),
		Tracer:        r.tracer.Stats(),
	}
	for _, b := range backends {
		st.Backends = append(st.Backends, BackendStats{
			Name:        b.name,
			Available:   b.available(now),
			Quarantined: b.down.Load(),
			BreakerOpen: b.breaker.open(now),
			Requests:    b.requests.Load(),
			Failures:    b.failures.Load(),
			ProbeFails:  b.probeFails.Load(),
			Quarantines: b.quarantines.Load(),
			Latency:     b.hist.Snapshot(),
		})
	}
	return st
}

// handleHealthz reports router liveness plus the fleet's availability:
// 200 while at least one backend is available, 503 when none is — a
// load balancer in front of several routers needs that distinction.
func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	st := r.Stats()
	avail := 0
	for _, b := range st.Backends {
		if b.Available {
			avail++
		}
	}
	status := http.StatusOK
	if avail == 0 {
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{
		"status":             http.StatusText(status),
		"backends":           len(st.Backends),
		"backends_available": avail,
		"slo":                st.SLO,
	})
}

// handleMetrics serves the router snapshot: JSON by default, the
// Prometheus text exposition under the same content negotiation the
// service uses (?format=prometheus, or a text/plain Accept header).
func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	st := r.Stats()
	if wantsPrometheus(req) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writePrometheus(w, st)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// wantsPrometheus mirrors the service's /metrics content negotiation
// so one scrape config covers routers and backends alike.
func wantsPrometheus(req *http.Request) bool {
	switch req.URL.Query().Get("format") {
	case "prometheus":
		return true
	case "json":
		return false
	}
	accept := strings.ToLower(req.Header.Get("Accept"))
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "application/openmetrics-text")
}

// topologyRequest is the PUT /admin/topology payload.
type topologyRequest struct {
	Backends []string `json:"backends"`
}

// handleTopology serves PUT /admin/topology: replace the backend set
// and warm-transfer hot plan-cache entries to their new owners.
func (r *Router) handleTopology(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, 1<<20))
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, "read topology body: "+err.Error())
		return
	}
	var tr topologyRequest
	if err := json.Unmarshal(body, &tr); err != nil {
		writeJSONError(w, http.StatusBadRequest, "decode topology: "+err.Error())
		return
	}
	if err := r.SetTopology(tr.Backends); err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"backends": r.Backends()})
}

// writePrometheus renders the router snapshot in the text exposition
// format with linerouter_* families. The service's writer is private
// to its package; this small sibling follows the same conventions
// (fixed family order, sorted labels, deterministic output).
func writePrometheus(w io.Writer, st Stats) {
	pf := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	family := func(name, typ, help string) {
		pf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}

	family("linerouter_proxied_requests_total", "counter", "Client requests entering the proxy.")
	pf("linerouter_proxied_requests_total %d\n", st.Proxied)
	family("linerouter_retries_total", "counter", "Extra proxy attempts beyond the first.")
	pf("linerouter_retries_total %d\n", st.Retries)
	family("linerouter_replica_fanout_reads_total", "counter", "Pure reads fanned out to the owner pair because the primary was unavailable.")
	pf("linerouter_replica_fanout_reads_total %d\n", st.ReplicaReads)
	family("linerouter_proxy_errors_total", "counter", "Requests that exhausted every attempt.")
	pf("linerouter_proxy_errors_total %d\n", st.ProxyErrors)
	family("linerouter_warm_transfer_runs_total", "counter", "Warm-transfer rounds triggered by topology changes.")
	pf("linerouter_warm_transfer_runs_total %d\n", st.WarmRuns)
	family("linerouter_warm_transfer_keys_total", "counter", "Plan-cache entries moved by warm transfers.")
	pf("linerouter_warm_transfer_keys_total %d\n", st.WarmKeys)
	family("linerouter_warm_transfer_errors_total", "counter", "Warm-transfer export or import failures.")
	pf("linerouter_warm_transfer_errors_total %d\n", st.WarmErrors)

	family("linerouter_slo_objective", "gauge", "Fraction of routed requests that must be good.")
	pf("linerouter_slo_objective %s\n", strconv.FormatFloat(st.SLO.Objective, 'g', -1, 64))
	family("linerouter_slo_latency_budget_seconds", "gauge", "Per-request latency budget the slow-rate burn is measured against.")
	pf("linerouter_slo_latency_budget_seconds %s\n", strconv.FormatFloat(st.SLO.LatencyBudgetSeconds, 'g', -1, 64))
	family("linerouter_slo_window_requests", "gauge", "Routed requests observed in each burn window.")
	for _, win := range st.SLO.Windows {
		pf("linerouter_slo_window_requests{window=%q} %d\n", win.Window, win.Requests)
	}
	family("linerouter_slo_error_burn_rate", "gauge", "Error-budget burn rate per window (1.0 = burning exactly at the allowed rate).")
	for _, win := range st.SLO.Windows {
		pf("linerouter_slo_error_burn_rate{window=%q} %s\n", win.Window, strconv.FormatFloat(win.ErrorBurnRate, 'g', -1, 64))
	}
	family("linerouter_slo_latency_burn_rate", "gauge", "Latency-budget burn rate per window.")
	for _, win := range st.SLO.Windows {
		pf("linerouter_slo_latency_burn_rate{window=%q} %s\n", win.Window, strconv.FormatFloat(win.LatencyBurnRate, 'g', -1, 64))
	}

	family("linerouter_journal_events_total", "counter", "Structured journal events recorded, by kind.")
	kinds := make([]string, 0, len(st.JournalEvents))
	for kind := range st.JournalEvents {
		kinds = append(kinds, kind)
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		pf("linerouter_journal_events_total{kind=%q} %d\n", kind, st.JournalEvents[kind])
	}

	family("linerouter_tracer_dropped_traces_total", "counter", "Completed traces evicted from the ring before being read.")
	pf("linerouter_tracer_dropped_traces_total %d\n", st.Tracer.Evicted)
	family("linerouter_tracer_truncated_traces_total", "counter", "Traces that completed with at least one span refused by the per-trace cap.")
	pf("linerouter_tracer_truncated_traces_total %d\n", st.Tracer.TruncatedTraces)

	family("linerouter_backend_up", "gauge", "Backend availability (1 = routable).")
	for _, b := range st.Backends {
		up := 0
		if b.Available {
			up = 1
		}
		pf("linerouter_backend_up{backend=%q} %d\n", b.Name, up)
	}
	family("linerouter_backend_requests_total", "counter", "Attempts forwarded, by backend.")
	for _, b := range st.Backends {
		pf("linerouter_backend_requests_total{backend=%q} %d\n", b.Name, b.Requests)
	}
	family("linerouter_backend_failures_total", "counter", "Failed attempts, by backend.")
	for _, b := range st.Backends {
		pf("linerouter_backend_failures_total{backend=%q} %d\n", b.Name, b.Failures)
	}
	family("linerouter_backend_quarantines_total", "counter", "Health-vote quarantine transitions, by backend.")
	for _, b := range st.Backends {
		pf("linerouter_backend_quarantines_total{backend=%q} %d\n", b.Name, b.Quarantines)
	}
	family("linerouter_backend_request_duration_seconds", "histogram", "Proxied request latency, by backend.")
	for _, b := range st.Backends {
		writeHistogram(pf, "linerouter_backend_request_duration_seconds", b.Name, b.Latency)
	}
}

// writeHistogram emits one backend's latency histogram series.
func writeHistogram(pf func(string, ...any), name, backendName string, h telemetry.HistogramSnapshot) {
	bounds := make([]string, 0, len(h.Buckets))
	for ub := range h.Buckets {
		if ub != "+Inf" {
			bounds = append(bounds, ub)
		}
	}
	sort.Slice(bounds, func(i, j int) bool {
		a, _ := strconv.ParseFloat(bounds[i], 64)
		b, _ := strconv.ParseFloat(bounds[j], 64)
		return a < b
	})
	for _, ub := range bounds {
		pf("%s_bucket{backend=%q,le=%q} %d\n", name, backendName, ub, h.Buckets[ub])
	}
	pf("%s_bucket{backend=%q,le=\"+Inf\"} %d\n", name, backendName, h.Buckets["+Inf"])
	pf("%s_sum{backend=%q} %s\n", name, backendName, strconv.FormatFloat(h.Sum, 'g', -1, 64))
	pf("%s_count{backend=%q} %d\n", name, backendName, h.Count)
}
