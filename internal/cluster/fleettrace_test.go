package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// sampledTraceparent is a fixed, sampled W3C header; its trace id is
// what the whole fleet must agree on.
const (
	stitchTraceID      = "4bf92f3577b34da6a3ce929d0e0e4736"
	sampledTraceparent = "00-" + stitchTraceID + "-00f067aa0ba902b7-01"
)

// fleetTraces fetches and decodes GET /debug/fleet-traces from the
// router's frontend.
func (f *fleet) fleetTraces(t *testing.T, query string) fleetTracesResponse {
	t.Helper()
	code, body := f.get(t, "/debug/fleet-traces"+query)
	if code != http.StatusOK {
		t.Fatalf("fleet-traces: status %d: %s", code, body)
	}
	var resp fleetTracesResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decode fleet-traces: %v\n%s", err, body)
	}
	return resp
}

// TestFleetTraceStitching is the end-to-end propagation test: one
// sampled request enters the router, replica-read fan-out forwards it
// to both owners, and /debug/fleet-traces must return a single stitched
// trace whose hops span all three processes — router and both backends
// — under the client's trace id.
func TestFleetTraceStitching(t *testing.T) {
	f := newFleet(t, 2, Config{})

	// Down the primary owner so the pure read fans out, but leave its
	// link intact: both owners serve the forwarded request, so both
	// backends record a hop for the trace.
	const query = "/v1/searchtime?n=4&f=2&x=3.5"
	req := httptest.NewRequest("GET", query, nil)
	key, _ := routingPolicy(req)
	f.router.mu.RLock()
	primary := f.router.ring.Owner(key)
	pb := f.router.backends[primary]
	f.router.mu.RUnlock()
	pb.down.Store(true)
	defer pb.down.Store(false)

	out, err := http.NewRequest("GET", f.frontend.URL+query, nil)
	if err != nil {
		t.Fatal(err)
	}
	out.Header.Set("Traceparent", sampledTraceparent)
	resp, err := http.DefaultClient.Do(out)
	if err != nil {
		t.Fatalf("traced GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced GET: status %d", resp.StatusCode)
	}
	if f.router.replicaReads.Load() == 0 {
		t.Fatal("replica fan-out never engaged; the test is not exercising the multi-backend path")
	}

	// The slower fan-out leg may still be finishing its backend-side
	// trace when the client sees the first answer; poll briefly.
	var stitched FleetTrace
	deadline := time.Now().Add(2 * time.Second)
	for {
		fleet := f.fleetTraces(t, "?trace="+stitchTraceID)
		if len(fleet.Errors) > 0 {
			t.Fatalf("scrape errors on a healthy fleet: %v", fleet.Errors)
		}
		if len(fleet.Scraped) != 2 {
			t.Fatalf("scraped %v, want both backends", fleet.Scraped)
		}
		if len(fleet.Traces) == 1 && fleet.Traces[0].Processes == 3 {
			stitched = fleet.Traces[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no 3-process stitched trace for %s; last response: %+v", stitchTraceID, fleet)
		}
		time.Sleep(10 * time.Millisecond)
	}

	if stitched.TraceID != stitchTraceID {
		t.Errorf("trace id = %s, want the client's %s", stitched.TraceID, stitchTraceID)
	}
	wantHops := map[string]bool{routerProcess: true, f.backendName(0): true, f.backendName(1): true}
	for i, hop := range stitched.Hops {
		if !wantHops[hop.Process] {
			t.Errorf("unexpected hop %q", hop.Process)
		}
		delete(wantHops, hop.Process)
		if hop.Trace.TraceID != stitchTraceID {
			t.Errorf("hop %s carries trace id %s; propagation broke", hop.Process, hop.Trace.TraceID)
		}
		if i == 0 && hop.Process != routerProcess {
			t.Errorf("first hop = %q, want the router leading the stitched tree", hop.Process)
		}
	}
	if len(wantHops) > 0 {
		t.Errorf("stitched trace missing hops: %v", wantHops)
	}

	// The router hop's tree must show the fan-out: a replica-read span
	// with one forward child per owner.
	router := stitched.Hops[0]
	var fanout int
	var sawReplicaRead bool
	var walk func(s SpanJSON)
	walk = func(s SpanJSON) {
		switch s.Name {
		case "replica-read":
			sawReplicaRead = true
		case "forward":
			fanout++
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(toSpanJSON(t, router.Trace.Root))
	if !sawReplicaRead || fanout != 2 {
		t.Errorf("router hop tree: replica-read=%v forwards=%d, want the 2-owner fan-out", sawReplicaRead, fanout)
	}

	// Hop attribution: the wall clock went to a backend, not the router.
	if stitched.SlowestHop == routerProcess || stitched.SlowestHop == "" {
		t.Errorf("slowest hop = %q, want a backend", stitched.SlowestHop)
	}
	if stitched.DurationSeconds <= 0 || stitched.SlowestHopSeconds <= 0 {
		t.Errorf("durations not populated: %+v", stitched)
	}
}

// SpanJSON re-decodes a span snapshot through its wire format, so the
// test walks exactly what an operator's jq would see.
type SpanJSON struct {
	Name     string     `json:"name"`
	Children []SpanJSON `json:"children"`
}

func toSpanJSON(t *testing.T, v any) SpanJSON {
	t.Helper()
	blob, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var s SpanJSON
	if err := json.Unmarshal(blob, &s); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFleetTracesToleratesDeadBackend pins the degraded-mode contract:
// a shard that cannot be scraped lands in the errors map and the
// endpoint still answers 200 with the live shards' traces.
func TestFleetTracesToleratesDeadBackend(t *testing.T) {
	f := newFleet(t, 2, Config{})
	// A couple of traced requests so the live rings are not empty.
	for i := 0; i < 3; i++ {
		f.get(t, fmt.Sprintf("/v1/plan?n=%d&f=1", i+2))
	}
	dead := f.backendName(1)
	f.backends[1].Close()

	fleet := f.fleetTraces(t, "")
	if fleet.Errors[dead] == "" {
		t.Fatalf("dead backend %s not reported in errors: %+v", dead, fleet.Errors)
	}
	if len(fleet.Scraped) != 1 || fleet.Scraped[0] != f.backendName(0) {
		t.Errorf("scraped = %v, want only the live backend", fleet.Scraped)
	}
	if fleet.Count == 0 {
		t.Error("no traces returned despite live router and backend rings")
	}
}

// TestFleetTracesParams covers the parameter contract shared with the
// backends' /debug/traces: bad values answer 400, n cuts the list.
func TestFleetTracesParams(t *testing.T) {
	f := newFleet(t, 1, Config{})
	for i := 0; i < 5; i++ {
		f.get(t, fmt.Sprintf("/v1/plan?n=%d&f=1", i+2))
	}
	for _, bad := range []string{"?n=0", "?n=x", "?scrape_n=-1"} {
		if code, body := f.get(t, "/debug/fleet-traces"+bad); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", bad, code, body)
		}
	}
	fleet := f.fleetTraces(t, "?n=2")
	if len(fleet.Traces) > 2 {
		t.Errorf("n=2 returned %d traces", len(fleet.Traces))
	}
	if fleet.Count < len(fleet.Traces) {
		t.Errorf("count %d below returned %d", fleet.Count, len(fleet.Traces))
	}
	// The router's own ring endpoint shares the validation.
	for _, bad := range []string{"?n=0", "?sort=upside-down"} {
		if code, _ := f.get(t, "/debug/traces"+bad); code != http.StatusBadRequest {
			t.Errorf("/debug/traces%s: status %d, want 400", bad, code)
		}
	}
	if !strings.HasPrefix(f.backendName(0), "127.0.0.1:") {
		t.Fatalf("backend name %q not a host:port", f.backendName(0))
	}
}
