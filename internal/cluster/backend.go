package cluster

import (
	"fmt"
	"net/url"
	"sync/atomic"
	"time"

	"linesearch/internal/telemetry"
	"linesearch/internal/telemetry/journal"
)

// backend is one linesearchd process behind the router: its base URL,
// circuit breaker, health-vote state and telemetry. The latency
// histogram feeds three consumers: the router's /metrics exposition,
// the loadgen percentile read-back, and the health checker's slow-vote
// rule (a shard whose mean latency over a probe window exceeds the
// threshold draws a failed vote exactly like a failed probe — the
// paper's silent-fault robot, slow enough to be useless, is treated as
// faulty).
type backend struct {
	name string // host:port, the ring member and metrics label
	base *url.URL

	breaker *breaker
	hist    *telemetry.Histogram

	requests atomic.Int64 // proxied attempts sent to this backend
	failures atomic.Int64 // attempts that failed (transport error or retryable status)

	// Health-vote state, owned by the health loop.
	down        atomic.Bool
	votes       atomic.Int32 // consecutive failed health votes
	probeFails  atomic.Int64 // lifetime failed probes
	quarantines atomic.Int64 // lifetime down transitions

	// Last histogram reading the slow-vote rule diffed against.
	lastCount int64
	lastSum   float64
}

// newBackend parses a base URL into a backend. Only the scheme and
// host are kept: the router joins request paths onto it. The breaker
// records its open/half-open/close transitions into jrnl under the
// backend's name.
func newBackend(raw string, threshold int, cooldown time.Duration, jrnl *journal.Journal) (*backend, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("cluster: backend url %q: %w", raw, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("cluster: backend url %q needs a scheme and host (e.g. http://127.0.0.1:8081)", raw)
	}
	return &backend{
		name:    u.Host,
		base:    &url.URL{Scheme: u.Scheme, Host: u.Host},
		breaker: newBreaker(threshold, cooldown, u.Host, jrnl),
		hist:    telemetry.NewHistogram(),
	}, nil
}

// available reports whether the router should prefer this backend:
// not quarantined by health voting and not rejected by the breaker.
func (b *backend) available(now time.Time) bool {
	return !b.down.Load() && b.breaker.allow(now)
}
