package cluster

import (
	"sync"
	"time"
)

// breaker is a per-backend circuit breaker. Closed it admits
// everything; consecutive failures at or beyond the threshold open it
// for a cooldown, during which the backend is skipped in failover
// order. A backend that answers 429/503 with Retry-After opens the
// breaker for exactly that long — the router honors the admission
// contract by cooling the shard down instead of hammering it, while
// failing over to the next owner immediately. After the cooldown the
// breaker is half-open: requests flow again, a success closes it, and
// the first failure re-opens it for a full cooldown (the consecutive
// count is already at the threshold).
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu        sync.Mutex
	failures  int       // consecutive
	openUntil time.Time // zero when closed
}

// newBreaker returns a closed breaker (threshold < 1 and cooldown <= 0
// get defaults).
func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold < 1 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a request may be sent now.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.openUntil.IsZero() || !now.Before(b.openUntil)
}

// success records a request the backend answered healthily and closes
// the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	b.failures = 0
	b.openUntil = time.Time{}
	b.mu.Unlock()
}

// failure records a failed request. retryAfter > 0 (a parsed
// Retry-After header) opens the breaker for exactly that long — the
// backend told us when to come back; otherwise consecutive failures
// reaching the threshold open it for the cooldown.
func (b *breaker) failure(now time.Time, retryAfter time.Duration) {
	b.mu.Lock()
	b.failures++
	switch {
	case retryAfter > 0:
		b.openUntil = now.Add(retryAfter)
	case b.failures >= b.threshold:
		b.openUntil = now.Add(b.cooldown)
	}
	b.mu.Unlock()
}

// open reports whether the breaker currently rejects requests.
func (b *breaker) open(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.openUntil.IsZero() && now.Before(b.openUntil)
}
