package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"linesearch/internal/telemetry/journal"
)

// breaker is a per-backend circuit breaker. Closed it admits
// everything; consecutive failures at or beyond the threshold open it
// for a cooldown, during which the backend is skipped in failover
// order. A backend that answers 429/503 with Retry-After opens the
// breaker for exactly that long — the router honors the admission
// contract by cooling the shard down instead of hammering it, while
// failing over to the next owner immediately. After the cooldown the
// breaker is half-open: requests flow again, a success closes it, and
// the first failure re-opens it for a full cooldown (the consecutive
// count is already at the threshold).
//
// State transitions (open, half-open probe, close) are recorded in the
// journal under the backend's name so an operator can line up "breaker
// opened" against the membership and quarantine events around it.
type breaker struct {
	threshold int
	cooldown  time.Duration
	name      string           // backend host:port, the journal member label
	jrnl      *journal.Journal // nil-safe

	mu             sync.Mutex
	failures       int       // consecutive
	openUntil      time.Time // zero when closed
	halfOpenLogged bool      // one half-open event per open cycle
}

// newBreaker returns a closed breaker (threshold < 1 and cooldown <= 0
// get defaults).
func newBreaker(threshold int, cooldown time.Duration, name string, jrnl *journal.Journal) *breaker {
	if threshold < 1 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	return &breaker{threshold: threshold, cooldown: cooldown, name: name, jrnl: jrnl}
}

// allow reports whether a request may be sent now. The first allowed
// request after the cooldown lapses marks the half-open probe.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	if b.openUntil.IsZero() {
		b.mu.Unlock()
		return true
	}
	if now.Before(b.openUntil) {
		b.mu.Unlock()
		return false
	}
	logHalfOpen := !b.halfOpenLogged
	b.halfOpenLogged = true
	b.mu.Unlock()
	if logHalfOpen {
		b.jrnl.Record(context.Background(), journal.BreakerHalfOpen, b.name, "cooldown lapsed, probing")
	}
	return true
}

// success records a request the backend answered healthily and closes
// the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	wasOpen := !b.openUntil.IsZero()
	b.failures = 0
	b.openUntil = time.Time{}
	b.halfOpenLogged = false
	b.mu.Unlock()
	if wasOpen {
		b.jrnl.Record(context.Background(), journal.BreakerClose, b.name, "half-open probe succeeded")
	}
}

// failure records a failed request. retryAfter > 0 (a parsed
// Retry-After header) opens the breaker for exactly that long — the
// backend told us when to come back; otherwise consecutive failures
// reaching the threshold open it for the cooldown.
func (b *breaker) failure(now time.Time, retryAfter time.Duration) {
	b.mu.Lock()
	wasOpen := !b.openUntil.IsZero() && now.Before(b.openUntil)
	b.failures++
	var detail string
	switch {
	case retryAfter > 0:
		b.openUntil = now.Add(retryAfter)
		b.halfOpenLogged = false
		detail = fmt.Sprintf("retry-after %s", retryAfter)
	case b.failures >= b.threshold:
		b.openUntil = now.Add(b.cooldown)
		b.halfOpenLogged = false
		detail = fmt.Sprintf("%d consecutive failures", b.failures)
	}
	isOpen := !b.openUntil.IsZero() && now.Before(b.openUntil)
	b.mu.Unlock()
	if isOpen && !wasOpen {
		b.jrnl.Record(context.Background(), journal.BreakerOpen, b.name, detail)
	}
}

// open reports whether the breaker currently rejects requests.
func (b *breaker) open(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.openUntil.IsZero() && now.Before(b.openUntil)
}
