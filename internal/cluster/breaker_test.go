package cluster

import (
	"sync"
	"testing"
	"time"
)

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b := newBreaker(3, 2*time.Second, "b:1", nil)
	now := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		b.failure(now, 0)
		if !b.allow(now) {
			t.Fatalf("breaker opened after %d failures, threshold is 3", i+1)
		}
	}
	b.failure(now, 0)
	if b.allow(now) {
		t.Fatal("breaker still closed after 3 consecutive failures")
	}
	if b.allow(now.Add(time.Second)) {
		t.Fatal("breaker admitted mid-cooldown")
	}
	if !b.allow(now.Add(2 * time.Second)) {
		t.Fatal("breaker still open after the cooldown elapsed")
	}
}

func TestBreakerSuccessResets(t *testing.T) {
	b := newBreaker(3, time.Second, "b:1", nil)
	now := time.Unix(1000, 0)
	b.failure(now, 0)
	b.failure(now, 0)
	b.success()
	b.failure(now, 0)
	b.failure(now, 0)
	if !b.allow(now) {
		t.Fatal("success did not reset the consecutive-failure count")
	}
}

// TestBreakerRetryAfter pins the admission-contract handling: a parsed
// Retry-After opens the breaker for exactly that long, on the first
// failure, regardless of the threshold.
func TestBreakerRetryAfter(t *testing.T) {
	b := newBreaker(3, time.Second, "b:1", nil)
	now := time.Unix(1000, 0)
	b.failure(now, 5*time.Second)
	if b.allow(now.Add(4 * time.Second)) {
		t.Fatal("breaker ignored Retry-After")
	}
	if !b.allow(now.Add(5 * time.Second)) {
		t.Fatal("breaker open past the Retry-After window")
	}
}

// TestBreakerHalfOpenReopens pins the half-open contract: after the
// cooldown requests flow again, and the first failure re-opens for a
// full cooldown while a success closes fully.
func TestBreakerHalfOpenReopens(t *testing.T) {
	b := newBreaker(2, time.Second, "b:1", nil)
	now := time.Unix(1000, 0)
	b.failure(now, 0)
	b.failure(now, 0)
	if b.allow(now) {
		t.Fatal("breaker should be open")
	}
	halfOpen := now.Add(time.Second)
	if !b.allow(halfOpen) {
		t.Fatal("breaker should admit after cooldown")
	}
	b.failure(halfOpen, 0) // half-open probe failed
	if b.allow(halfOpen.Add(500 * time.Millisecond)) {
		t.Fatal("failed half-open probe should re-open for a full cooldown")
	}
	if !b.allow(halfOpen.Add(time.Second)) {
		t.Fatal("re-opened breaker should admit after its cooldown")
	}
	b.success()
	if !b.allow(now) || b.open(now) {
		t.Fatal("success should close the breaker entirely")
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		max  time.Duration
		want time.Duration
	}{
		{"", 5 * time.Second, 0},
		{"2", 5 * time.Second, 2 * time.Second},
		{" 3 ", 5 * time.Second, 3 * time.Second},
		{"120", 5 * time.Second, 5 * time.Second}, // capped
		{"-1", 5 * time.Second, 0},
		{"soon", 5 * time.Second, 0}, // HTTP-date form unsupported, ignored
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.in, tc.max); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestBreakerHalfOpenProbeRacesSuccess pins the race the half-open
// window invites: a probe failure and an unrelated in-flight success
// land concurrently. Whatever the interleaving, the breaker must end
// in one of exactly two legal states — fully closed, or open for a
// full cooldown from the half-open instant — never a torn mix like
// "closed but one failure from re-opening forever".
func TestBreakerHalfOpenProbeRacesSuccess(t *testing.T) {
	// Both deterministic interleavings first.
	now := time.Unix(1000, 0)
	halfOpen := now.Add(time.Second)

	b := newBreaker(2, time.Second, "b:1", nil)
	b.failure(now, 0)
	b.failure(now, 0)
	b.failure(halfOpen, 0) // probe fails...
	b.success()            // ...then a straggling success lands
	if !b.allow(halfOpen) || b.open(halfOpen) {
		t.Fatal("success after a failed probe must close the breaker")
	}
	b.failure(halfOpen, 0)
	if !b.allow(halfOpen) {
		t.Fatal("the close did not reset the consecutive count: one failure re-opened")
	}

	b = newBreaker(2, time.Second, "b:1", nil)
	b.failure(now, 0)
	b.failure(now, 0)
	b.success()            // success first...
	b.failure(halfOpen, 0) // ...then the failed probe
	if !b.allow(halfOpen) {
		t.Fatal("single failure after a close must not open (threshold is 2)")
	}

	// Then genuinely concurrent, for the race detector and the
	// two-legal-states invariant.
	for i := 0; i < 100; i++ {
		b := newBreaker(2, time.Second, "b:1", nil)
		b.failure(now, 0)
		b.failure(now, 0)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); b.failure(halfOpen, 0) }()
		go func() { defer wg.Done(); b.success() }()
		wg.Wait()

		b.mu.Lock()
		closed := b.openUntil.IsZero() && b.failures <= 1
		reopened := b.openUntil.Equal(halfOpen.Add(time.Second))
		b.mu.Unlock()
		if !closed && !reopened {
			t.Fatalf("iteration %d: breaker in a torn state: %+v", i, b)
		}
	}
}

// TestBreakerRetryAfterExactlyAtCap pins the cap boundary: a
// Retry-After equal to MaxRetryAfter passes through uncapped, one
// second over is clamped, and the breaker honors the exact duration to
// the nanosecond.
func TestBreakerRetryAfterExactlyAtCap(t *testing.T) {
	const cap = 5 * time.Second
	if got := parseRetryAfter("5", cap); got != cap {
		t.Fatalf("parseRetryAfter at the cap = %v, want %v uncapped", got, cap)
	}
	if got := parseRetryAfter("6", cap); got != cap {
		t.Fatalf("parseRetryAfter(6) = %v, want clamped to %v", got, cap)
	}
	if got := parseRetryAfter("4", cap); got != 4*time.Second {
		t.Fatalf("parseRetryAfter(4) = %v, want 4s", got)
	}

	b := newBreaker(3, time.Second, "b:1", nil)
	now := time.Unix(1000, 0)
	b.failure(now, parseRetryAfter("5", cap))
	if b.allow(now.Add(cap - time.Nanosecond)) {
		t.Fatal("breaker admitted a nanosecond before the at-cap Retry-After elapsed")
	}
	if !b.allow(now.Add(cap)) {
		t.Fatal("breaker still open at exactly the at-cap Retry-After boundary")
	}
}
