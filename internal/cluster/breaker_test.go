package cluster

import (
	"testing"
	"time"
)

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b := newBreaker(3, 2*time.Second)
	now := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		b.failure(now, 0)
		if !b.allow(now) {
			t.Fatalf("breaker opened after %d failures, threshold is 3", i+1)
		}
	}
	b.failure(now, 0)
	if b.allow(now) {
		t.Fatal("breaker still closed after 3 consecutive failures")
	}
	if b.allow(now.Add(time.Second)) {
		t.Fatal("breaker admitted mid-cooldown")
	}
	if !b.allow(now.Add(2 * time.Second)) {
		t.Fatal("breaker still open after the cooldown elapsed")
	}
}

func TestBreakerSuccessResets(t *testing.T) {
	b := newBreaker(3, time.Second)
	now := time.Unix(1000, 0)
	b.failure(now, 0)
	b.failure(now, 0)
	b.success()
	b.failure(now, 0)
	b.failure(now, 0)
	if !b.allow(now) {
		t.Fatal("success did not reset the consecutive-failure count")
	}
}

// TestBreakerRetryAfter pins the admission-contract handling: a parsed
// Retry-After opens the breaker for exactly that long, on the first
// failure, regardless of the threshold.
func TestBreakerRetryAfter(t *testing.T) {
	b := newBreaker(3, time.Second)
	now := time.Unix(1000, 0)
	b.failure(now, 5*time.Second)
	if b.allow(now.Add(4 * time.Second)) {
		t.Fatal("breaker ignored Retry-After")
	}
	if !b.allow(now.Add(5 * time.Second)) {
		t.Fatal("breaker open past the Retry-After window")
	}
}

// TestBreakerHalfOpenReopens pins the half-open contract: after the
// cooldown requests flow again, and the first failure re-opens for a
// full cooldown while a success closes fully.
func TestBreakerHalfOpenReopens(t *testing.T) {
	b := newBreaker(2, time.Second)
	now := time.Unix(1000, 0)
	b.failure(now, 0)
	b.failure(now, 0)
	if b.allow(now) {
		t.Fatal("breaker should be open")
	}
	halfOpen := now.Add(time.Second)
	if !b.allow(halfOpen) {
		t.Fatal("breaker should admit after cooldown")
	}
	b.failure(halfOpen, 0) // half-open probe failed
	if b.allow(halfOpen.Add(500 * time.Millisecond)) {
		t.Fatal("failed half-open probe should re-open for a full cooldown")
	}
	if !b.allow(halfOpen.Add(time.Second)) {
		t.Fatal("re-opened breaker should admit after its cooldown")
	}
	b.success()
	if !b.allow(now) || b.open(now) {
		t.Fatal("success should close the breaker entirely")
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		max  time.Duration
		want time.Duration
	}{
		{"", 5 * time.Second, 0},
		{"2", 5 * time.Second, 2 * time.Second},
		{" 3 ", 5 * time.Second, 3 * time.Second},
		{"120", 5 * time.Second, 5 * time.Second}, // capped
		{"-1", 5 * time.Second, 0},
		{"soon", 5 * time.Second, 0}, // HTTP-date form unsupported, ignored
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.in, tc.max); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
