package cluster

import (
	"io"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestValidateBackends pins the one validator every entry point into
// the ring shares: the -backends flag, PUT /admin/topology, and the
// membership seed list all reject the same shapes for the same
// reasons.
func TestValidateBackends(t *testing.T) {
	cases := []struct {
		name    string
		urls    []string
		wantErr string // substring of the rejection reason; "" = valid
	}{
		{"single", []string{"http://127.0.0.1:8081"}, ""},
		{"many", []string{"http://a:1", "https://b:2", "http://c:3"}, ""},
		{"empty list", nil, "empty"},
		{"blank entry", []string{"http://a:1", "   "}, "empty url"},
		{"unparsable", []string{"http://[::1"}, "does not parse"},
		{"no scheme", []string{"127.0.0.1:8081"}, "does not parse"},
		{"bare host", []string{"localhost"}, "scheme"},
		{"wrong scheme", []string{"ftp://a:1"}, "scheme"},
		{"no host", []string{"http://"}, "no host"},
		{"duplicate host", []string{"http://a:1", "http://a:1"}, "both name"},
		{"duplicate via path", []string{"http://a:1/x", "http://a:1/y"}, "both name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateBackends(tc.urls)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("ValidateBackends(%v) = %v, want nil", tc.urls, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("ValidateBackends(%v) accepted an invalid list", tc.urls)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("ValidateBackends(%v) = %q, want reason containing %q", tc.urls, err, tc.wantErr)
			}
		})
	}
}

// TestNewRejectsInvalidBackends: the constructor runs the same
// validation as the topology endpoint, so a bad -backends flag fails
// at startup instead of at first request.
func TestNewRejectsInvalidBackends(t *testing.T) {
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	for _, urls := range [][]string{
		{"http://a:1", "http://a:1"},
		{"ftp://a:1"},
		{},
	} {
		if _, err := New(Config{Backends: urls, HealthInterval: -1, Logger: quiet}); err == nil {
			t.Errorf("New accepted backends %v", urls)
		}
	}
}

// TestTopologyEndpointRejectsWithReason: every invalid PUT
// /admin/topology gets a 400 whose JSON body names the reason, and the
// serving topology is untouched afterwards.
func TestTopologyEndpointRejectsWithReason(t *testing.T) {
	f := newFleet(t, 2, Config{})
	before := f.router.Backends()

	cases := []struct {
		name string
		body string
		want string // substring of the error field
	}{
		{"empty list", `{"backends": []}`, "empty"},
		{"blank entry", `{"backends": ["http://a:1", ""]}`, "empty url"},
		{"bad scheme", `{"backends": ["ftp://a:1"]}`, "scheme"},
		{"no host", `{"backends": ["http://"]}`, "no host"},
		{"duplicates", `{"backends": ["http://a:1", "http://a:1"]}`, "both name"},
		{"not json", `{"backends": [`, "decode topology"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest("PUT", "/admin/topology", strings.NewReader(tc.body))
			w := httptest.NewRecorder()
			f.router.Handler().ServeHTTP(w, req)
			if w.Code != 400 {
				t.Fatalf("status %d, want 400 (body %s)", w.Code, w.Body.String())
			}
			if !strings.Contains(w.Body.String(), tc.want) {
				t.Fatalf("error body %q does not name the reason %q", w.Body.String(), tc.want)
			}
		})
	}

	after := f.router.Backends()
	if len(after) != len(before) {
		t.Fatalf("rejected updates changed the topology: %v -> %v", before, after)
	}
}
