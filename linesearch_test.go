package linesearch

import (
	"math"
	"math/rand"
	"testing"
)

func mustSearcher(t *testing.T, n, f int) *Searcher {
	t.Helper()
	s, err := New(n, f)
	if err != nil {
		t.Fatalf("New(%d, %d): %v", n, f, err)
	}
	return s
}

func TestNewPicksRecommendedStrategy(t *testing.T) {
	if s := mustSearcher(t, 3, 1); s.Strategy() != "proportional" {
		t.Errorf("New(3,1) strategy %q", s.Strategy())
	}
	if s := mustSearcher(t, 6, 2); s.Strategy() != "twogroup" {
		t.Errorf("New(6,2) strategy %q", s.Strategy())
	}
	if _, err := New(2, 2); err == nil {
		t.Error("hopeless pair accepted")
	}
}

func TestNewWithStrategy(t *testing.T) {
	s, err := NewWithStrategy("doubling", 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := s.CompetitiveRatio()
	if err != nil || cr != 9 {
		t.Errorf("doubling CR = %v, %v", cr, err)
	}
	if _, err := NewWithStrategy("nope", 3, 1); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := NewWithStrategy("twogroup", 3, 1); err == nil {
		t.Error("invalid regime accepted")
	}
}

func TestSearchTimeAndAccessors(t *testing.T) {
	s := mustSearcher(t, 3, 1)
	if s.N() != 3 || s.F() != 1 {
		t.Errorf("N, F = %d, %d", s.N(), s.F())
	}
	st, err := s.SearchTime(5)
	if err != nil {
		t.Fatal(err)
	}
	if !(st >= 5) || math.IsInf(st, 1) {
		t.Errorf("SearchTime(5) = %v", st)
	}
	cr, err := s.CompetitiveRatio()
	if err != nil {
		t.Fatal(err)
	}
	if st > cr*5+1e-9 {
		t.Errorf("SearchTime(5) = %v exceeds CR * distance = %v", st, cr*5)
	}
}

func TestTwoGroupSearchTimeEqualsDistance(t *testing.T) {
	s := mustSearcher(t, 6, 2)
	for _, x := range []float64{1, -3.5, 42} {
		got, err := s.SearchTime(x)
		if err != nil {
			t.Fatalf("SearchTime(%v): %v", x, err)
		}
		if got != math.Abs(x) {
			t.Errorf("SearchTime(%v) = %v, want %v", x, got, math.Abs(x))
		}
	}
}

func TestPositions(t *testing.T) {
	s := mustSearcher(t, 3, 1)
	ps, err := s.Positions(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 3 {
		t.Fatalf("got %d positions", len(ps))
	}
	for i, p := range ps {
		if p != 0 {
			t.Errorf("robot %d at t=0: %v, want origin", i, p)
		}
	}
	if _, err := s.Positions(-1); err == nil {
		t.Error("negative time accepted")
	}
}

func TestDetectionTimeAndWorstFaults(t *testing.T) {
	s := mustSearcher(t, 3, 1)
	x := 2.5
	worst := s.WorstFaultSet(x)
	if len(worst) != 1 {
		t.Fatalf("worst fault set %v, want 1 index", worst)
	}
	dt, err := s.DetectionTime(x, worst)
	if err != nil {
		t.Fatal(err)
	}
	worstTime, err := s.SearchTime(x)
	if err != nil {
		t.Fatal(err)
	}
	if dt != worstTime {
		t.Errorf("worst-fault detection %v != search time %v", dt, worstTime)
	}
	// No faults: detection is the first visit, strictly earlier here.
	dt0, err := s.DetectionTime(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !(dt0 < dt) {
		t.Errorf("fault-free detection %v not earlier than worst case %v", dt0, dt)
	}
}

func TestDetectionTimeValidation(t *testing.T) {
	s := mustSearcher(t, 3, 1)
	if _, err := s.DetectionTime(1, []int{5}); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := s.DetectionTime(1, []int{0, 0}); err == nil {
		t.Error("duplicate index accepted")
	}
}

func TestMeasureCRMatchesAnalytic(t *testing.T) {
	s := mustSearcher(t, 3, 1)
	analytic, err := s.CompetitiveRatio()
	if err != nil {
		t.Fatal(err)
	}
	sup, witness, err := s.MeasureCR()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sup-analytic) > 1e-6 {
		t.Errorf("measured %v vs analytic %v", sup, analytic)
	}
	if math.Abs(witness) < 1 {
		t.Errorf("witness %v below distance 1", witness)
	}
}

func TestTimeline(t *testing.T) {
	s := mustSearcher(t, 3, 1)
	events, err := s.Timeline(2, []int{0}, 50)
	if err != nil {
		t.Fatal(err)
	}
	var detect bool
	for _, e := range events {
		switch e.Kind {
		case "start", "turn", "visit", "detect":
		default:
			t.Errorf("unknown event kind %q", e.Kind)
		}
		if e.Kind == "detect" {
			detect = true
			if e.Robot == 0 {
				t.Error("faulty robot 0 detected the target")
			}
		}
	}
	if !detect {
		t.Error("no detection within horizon")
	}
}

func TestMonteCarlo(t *testing.T) {
	s := mustSearcher(t, 5, 2)
	stats, err := s.MonteCarlo(800, 11)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := s.CompetitiveRatio()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Trials != 800 {
		t.Errorf("Trials = %d", stats.Trials)
	}
	if !(1 <= stats.Min && stats.Min <= stats.Median && stats.Median <= stats.P95 &&
		stats.P95 <= stats.P99 && stats.P99 <= stats.Max && stats.Max <= cr+1e-9) {
		t.Errorf("inconsistent stats: %+v (CR %v)", stats, cr)
	}
	if !(stats.Mean < cr) {
		t.Errorf("mean %v not below worst case %v", stats.Mean, cr)
	}
}

func TestVerifyLowerBound(t *testing.T) {
	s := mustSearcher(t, 3, 1)
	alpha, ratio, err := s.VerifyLowerBound()
	if err != nil {
		t.Fatal(err)
	}
	if !(alpha > 3 && ratio >= alpha) {
		t.Errorf("alpha %v, ratio %v", alpha, ratio)
	}
	trivial := mustSearcher(t, 6, 2)
	if _, _, err := trivial.VerifyLowerBound(); err == nil {
		t.Error("trivial regime accepted (outside Theorem 2 hypothesis)")
	}
}

func TestKthVisitTime(t *testing.T) {
	s := mustSearcher(t, 5, 2)
	x := 7.7
	prev := 0.0
	for k := 1; k <= 5; k++ {
		got, err := s.KthVisitTime(x, k)
		if err != nil {
			t.Fatal(err)
		}
		if got <= prev {
			t.Errorf("k=%d: visit time %v not increasing", k, got)
		}
		prev = got
	}
	st, err := s.KthVisitTime(x, 3) // k = f+1
	if err != nil {
		t.Fatal(err)
	}
	worst, err := s.SearchTime(x)
	if err != nil {
		t.Fatal(err)
	}
	if st != worst {
		t.Errorf("KthVisitTime(x, f+1) = %v != SearchTime %v", st, worst)
	}
	if _, err := s.KthVisitTime(x, 0); err == nil {
		t.Error("k = 0 accepted")
	}
	if _, err := s.KthVisitTime(x, 6); err == nil {
		t.Error("k > n accepted")
	}
}

// TestCompetitiveRatioFallsBackToMeasurement: strategies without a
// closed form (the uniform-spacing ablation) are measured instead.
func TestCompetitiveRatioFallsBackToMeasurement(t *testing.T) {
	s, err := NewWithStrategy("uniform:1.6666666666666667", 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := s.CompetitiveRatio()
	if err != nil {
		t.Fatal(err)
	}
	// The uniform schedule at beta* measures ~8.33 (see the spacing
	// experiment); anything clearly above the proportional 5.23 and
	// below the doubling 9 confirms the measurement path ran.
	if !(cr > 6 && cr < 9.5) {
		t.Errorf("measured uniform CR = %v, expected in (6, 9.5)", cr)
	}
}

func TestBounds(t *testing.T) {
	b, err := Bounds(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Upper-5.233) > 2e-3 || math.Abs(b.Lower-3.76) > 5e-3 {
		t.Errorf("bounds %+v", b)
	}
	if math.Abs(b.Beta-5.0/3) > 1e-12 || math.Abs(b.Expansion-4) > 1e-9 {
		t.Errorf("schedule params %+v", b)
	}

	bt, err := Bounds(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if bt.Upper != 1 || bt.Lower != 1 || !math.IsNaN(bt.Beta) || !math.IsNaN(bt.Expansion) {
		t.Errorf("trivial bounds %+v", bt)
	}

	if _, err := Bounds(0, 0); err == nil {
		t.Error("invalid pair accepted")
	}
}

// TestNonFiniteInputsRejected: every float-taking query rejects NaN and
// infinities with a clear error instead of computing garbage.
func TestNonFiniteInputsRejected(t *testing.T) {
	s := mustSearcher(t, 3, 1)
	for _, x := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := s.SearchTime(x); err == nil {
			t.Errorf("SearchTime(%v) accepted", x)
		}
		if _, err := s.KthVisitTime(x, 2); err == nil {
			t.Errorf("KthVisitTime(%v) accepted", x)
		}
		if _, err := s.DetectionTime(x, nil); err == nil {
			t.Errorf("DetectionTime(%v) accepted", x)
		}
		if _, err := s.Timeline(x, nil, 50); err == nil {
			t.Errorf("Timeline(x=%v) accepted", x)
		}
		if _, err := s.Positions(x); err == nil {
			t.Errorf("Positions(%v) accepted", x)
		}
		if _, err := s.TurningPoints(x); err == nil {
			t.Errorf("TurningPoints(%v) accepted", x)
		}
	}
	if _, err := s.Timeline(2, nil, math.NaN()); err == nil {
		t.Error("Timeline with NaN horizon accepted")
	}
	if _, err := s.Timeline(2, nil, math.Inf(1)); err == nil {
		t.Error("Timeline with infinite horizon accepted")
	}
	if _, err := RobotsNeeded(1, math.NaN()); err == nil {
		t.Error("RobotsNeeded with NaN bound accepted")
	}
	if _, err := FaultsTolerable(3, math.NaN()); err == nil {
		t.Error("FaultsTolerable with NaN bound accepted")
	}
	for _, name := range []string{"cone:+Inf", "cone:Inf", "cone:NaN", "uniform:Inf"} {
		if _, err := NewWithStrategy(name, 3, 1); err == nil {
			t.Errorf("strategy %q accepted", name)
		}
	}
}

// TestSearchTimeDomain: targets closer than the minimal distance are
// outside the guarantee and rejected.
func TestSearchTimeDomain(t *testing.T) {
	s := mustSearcher(t, 3, 1)
	if _, err := s.SearchTime(0.5); err == nil {
		t.Error("target below the minimal distance accepted")
	}
	d, err := NewSearcher(3, 1, WithMinDistance(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.SearchTime(5); err == nil {
		t.Error("target below the scaled minimal distance accepted")
	}
	if _, err := d.SearchTime(-10); err != nil {
		t.Errorf("target at the minimal distance rejected: %v", err)
	}
}

func TestTurningPoints(t *testing.T) {
	s := mustSearcher(t, 3, 1)
	pts, err := s.TurningPoints(50)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d robots", len(pts))
	}
	for i, ps := range pts {
		if len(ps) < 2 {
			t.Errorf("robot %d: only %d points", i, len(ps))
		}
		prev := math.Inf(-1)
		for _, p := range ps {
			if p.T < prev {
				t.Errorf("robot %d: time runs backward at %+v", i, p)
			}
			prev = p.T
		}
		if ps[0].T != 0 || ps[0].X != 0 {
			t.Errorf("robot %d does not start at the origin: %+v", i, ps[0])
		}
	}
}

func TestPackageLevelConvenience(t *testing.T) {
	cr, err := CompetitiveRatio(2, 1)
	if err != nil || math.Abs(cr-9) > 1e-9 {
		t.Errorf("CompetitiveRatio(2,1) = %v, %v", cr, err)
	}
	lb, err := LowerBound(2, 1)
	if err != nil || lb != 9 {
		t.Errorf("LowerBound(2,1) = %v, %v", lb, err)
	}
	inf, err := CompetitiveRatio(2, 3)
	if err != nil || !math.IsInf(inf, 1) {
		t.Errorf("CompetitiveRatio(2,3) = %v, %v", inf, err)
	}
}

// TestKthVisitTimeProperties checks two invariants across every
// strategy family: T_k(x) is non-decreasing in k (a later distinct
// visitor cannot arrive earlier), and the worst-case search time is
// exactly the (f+1)-st distinct visit.
func TestKthVisitTimeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	strategies := []string{"proportional", "doubling", "twogroup", "cone:2.5", "cone:4", "uniform:3"}
	pairs := []struct{ n, f int }{{1, 0}, {3, 1}, {4, 2}, {5, 2}, {6, 2}, {8, 3}, {9, 4}}
	evaluated := 0
	for _, name := range strategies {
		for _, p := range pairs {
			s, err := NewWithStrategy(name, p.n, p.f)
			if err != nil {
				continue // strategy not defined in this regime
			}
			for i := 0; i < 25; i++ {
				x := math.Pow(10, 3*rng.Float64())
				if rng.Intn(2) == 0 {
					x = -x
				}
				prev := math.Inf(-1)
				for k := 1; k <= p.n; k++ {
					tk, err := s.KthVisitTime(x, k)
					if err != nil {
						t.Fatalf("%s(%d,%d) x=%g k=%d: %v", name, p.n, p.f, x, k, err)
					}
					if tk < prev {
						t.Errorf("%s(%d,%d) x=%g: T_%d = %v < T_%d = %v",
							name, p.n, p.f, x, k, tk, k-1, prev)
					}
					prev = tk
				}
				worst, err := s.SearchTime(x)
				if err != nil {
					t.Fatalf("%s(%d,%d) x=%g: %v", name, p.n, p.f, x, err)
				}
				kth, err := s.KthVisitTime(x, p.f+1)
				if err != nil {
					t.Fatal(err)
				}
				if worst != kth && !(math.IsInf(worst, 1) && math.IsInf(kth, 1)) {
					t.Errorf("%s(%d,%d) x=%g: SearchTime %v != KthVisitTime(x, f+1) %v",
						name, p.n, p.f, x, worst, kth)
				}
				evaluated++
			}
		}
	}
	if evaluated == 0 {
		t.Fatal("no (strategy, n, f) case was evaluable")
	}
}

// FuzzSearchTime exercises the public entry point and the compiled
// kernel against arbitrary (n, f, strategy, x): construction and
// evaluation must never panic, any successful answer must respect the
// unit-speed bound t >= |x|, and the kernel must agree with the direct
// trajectory evaluation in internal/sim.
func FuzzSearchTime(fz *testing.F) {
	strategies := []string{"proportional", "doubling", "twogroup", "cone:2.5", "uniform:3"}
	fz.Add(uint8(3), uint8(1), uint8(0), 4.0)
	fz.Add(uint8(6), uint8(2), uint8(2), -7.5)
	fz.Add(uint8(4), uint8(2), uint8(1), 1e6)
	fz.Add(uint8(1), uint8(0), uint8(1), -1.0)
	fz.Add(uint8(9), uint8(4), uint8(3), 123.456)
	fz.Fuzz(func(t *testing.T, n, faults, si uint8, x float64) {
		if n > 32 {
			return // keep per-input cost bounded; width is not the interesting axis
		}
		s, err := NewWithStrategy(strategies[int(si)%len(strategies)], int(n), int(faults))
		if err != nil {
			return // invalid pair or out-of-regime strategy
		}
		got, err := s.SearchTime(x)
		if err != nil {
			return // target outside the plan's domain
		}
		if !math.IsInf(got, 1) && got < math.Abs(x)-1e-9 {
			t.Errorf("SearchTime(%g) = %v beats the unit-speed bound %v", x, got, math.Abs(x))
		}
		want := s.plan.SearchTime(x)
		if math.IsInf(got, 1) != math.IsInf(want, 1) {
			t.Fatalf("SearchTime(%g): kernel %v, sim %v", x, got, want)
		}
		if !math.IsInf(got, 1) {
			scale := math.Max(1, math.Max(math.Abs(got), math.Abs(want)))
			if math.Abs(got-want)/scale > 1e-9 {
				t.Errorf("SearchTime(%g): kernel %v, sim %v (rel err %g)",
					x, got, want, math.Abs(got-want)/scale)
			}
		}
	})
}
