package linesearch_test

// Service benchmarks live in the external test package so they can
// import internal/service, which itself imports linesearch.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"

	"linesearch/internal/service"
)

func newBenchService(b *testing.B, cacheSize int) http.Handler {
	b.Helper()
	svc := service.New(service.Config{
		CacheSize:      cacheSize,
		RequestTimeout: -1,
		Logger:         slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	return svc.Handler()
}

func serveBench(b *testing.B, h http.Handler, req *http.Request) {
	b.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("%s %s: status %d: %s", req.Method, req.URL, rec.Code, rec.Body.String())
	}
}

// BenchmarkServicePlanCold measures the full request path on a cache
// miss: parse, construct the A(n, f) plan, compute its CR and bounds,
// serialise. MinDist varies per iteration so every request misses.
func BenchmarkServicePlanCold(b *testing.B) {
	h := newBenchService(b, 1) // capacity 1: distinct keys always rebuild
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mindist := 1 + float64(i%1000)/1000 // cycle of 1000 distinct keys
		req := httptest.NewRequest(http.MethodGet,
			fmt.Sprintf("/v1/plan?n=5&f=2&mindist=%g", mindist), nil)
		serveBench(b, h, req)
	}
}

// BenchmarkServicePlanHot measures the same path when the plan is
// cached: everything except construction.
func BenchmarkServicePlanHot(b *testing.B) {
	h := newBenchService(b, 8)
	warm := httptest.NewRequest(http.MethodGet, "/v1/plan?n=5&f=2", nil)
	serveBench(b, h, warm)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodGet, "/v1/plan?n=5&f=2", nil)
		serveBench(b, h, req)
	}
}

// BenchmarkBatch measures a 64-query mixed batch (plan, searchtime and
// lowerbound ops over a handful of (n, f) pairs) through the worker
// pool, with a warm cache.
func BenchmarkBatch(b *testing.B) {
	h := newBenchService(b, 32)
	var queries []map[string]any
	for i := 0; i < 64; i++ {
		n, f := 3+i%5, 1+i%2
		if n <= 2*f { // keep out of the hopeless regime
			f = 1
		}
		q := map[string]any{"n": n, "f": f}
		switch i % 3 {
		case 0:
			q["op"] = "plan"
		case 1:
			q["op"] = "searchtime"
			q["x"] = 2.0 + float64(i)
		case 2:
			q["op"] = "lowerbound"
		}
		queries = append(queries, q)
	}
	body, err := json.Marshal(map[string]any{"queries": queries})
	if err != nil {
		b.Fatal(err)
	}

	// Warm the cache so the benchmark measures fan-out and evaluation,
	// not first-touch plan construction.
	warm := httptest.NewRequest(http.MethodPost, "/v1/batch", bytes.NewReader(body))
	warm.Header.Set("Content-Type", "application/json")
	serveBench(b, h, warm)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/batch", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		serveBench(b, h, req)
	}
}
