#!/usr/bin/env bash
# Observability-plane smoke: boots two real linesearchd backends and a
# linerouter with its debug surface enabled, then asserts the
# cross-process plumbing end to end:
#
#   1. A sampled request pushed through the proxy shows up on the
#      router's /debug/fleet-traces as ONE trace spanning the router
#      and the serving backend (trace stitching).
#   2. A topology reshape journals topology_change on the router and,
#      via the warm transfer, snapshot_import on the backend that
#      inherited the hot plan-cache keys (/debug/events is live on
#      every process).
#
# Everything binds to 127.0.0.1 ephemeral ports; the trap kills the
# fleet and removes the scratch directory on any exit.
set -euo pipefail
cd "$(dirname "$0")/.."

GO=${GO:-go}
TRACE_ID=4bf92f3577b34da6a3ce929d0e0e4736
TRACEPARENT="00-${TRACE_ID}-00f067aa0ba902b7-01"

work=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$work"
}
trap cleanup EXIT

echo "obs-smoke: building daemons"
$GO build -o "$work/linesearchd" ./cmd/linesearchd
$GO build -o "$work/linerouter" ./cmd/linerouter

# wait_addr LOGFILE PATTERN: polls until the daemon prints its bound
# address ("<name>: [debug ]listening on HOST:PORT") and echoes it.
wait_addr() {
  local log=$1 pattern=$2 addr
  for _ in $(seq 1 100); do
    addr=$(awk -v pat="$pattern" '$0 ~ pat {print $NF; exit}' "$log" 2>/dev/null || true)
    if [ -n "$addr" ]; then echo "$addr"; return 0; fi
    sleep 0.1
  done
  echo "obs-smoke: no '$pattern' line in $log after 10s" >&2
  cat "$log" >&2
  return 1
}

start_backend() {
  local i=$1
  "$work/linesearchd" -addr 127.0.0.1:0 -quiet -trace-sample 1 \
    -sweep-dir "$work/sweeps$i" -replica-dir "$work/replicas$i" \
    -snapshot-dir "$work/snapshots$i" >"$work/b$i.log" 2>&1 &
  pids+=($!)
}
start_backend 1
start_backend 2
b1=$(wait_addr "$work/b1.log" "^linesearchd: listening on")
b2=$(wait_addr "$work/b2.log" "^linesearchd: listening on")
echo "obs-smoke: backends at $b1 $b2"

# The router starts on backend 1 alone so the reshape below moves every
# cached key: adding a donor's keys to an unchanged ring moves nothing.
"$work/linerouter" -addr 127.0.0.1:0 -quiet -trace-sample 1 \
  -backends "http://$b1" -debug-addr 127.0.0.1:0 >"$work/router.log" 2>&1 &
pids+=($!)
router=$(wait_addr "$work/router.log" "^linerouter: listening on")
debug=$(wait_addr "$work/router.log" "^linerouter: debug listening on")
echo "obs-smoke: router at $router (debug $debug)"

echo "obs-smoke: driving a traced request through the proxy"
curl -fsS -H "Traceparent: $TRACEPARENT" \
  "http://$router/v1/searchtime?n=4&f=2&x=3.5" >"$work/answer.json"
grep -q '"time"' "$work/answer.json" || {
  echo "obs-smoke: unexpected searchtime answer:" >&2; cat "$work/answer.json" >&2; exit 1; }

echo "obs-smoke: checking the stitched trace"
ok=false
for _ in $(seq 1 50); do
  curl -fsS "http://$debug/debug/fleet-traces?trace=$TRACE_ID" >"$work/fleet.json" || true
  if grep -q "\"trace_id\":\"$TRACE_ID\"" "$work/fleet.json" \
    && grep -q '"process":"router"' "$work/fleet.json" \
    && grep -Eq '"processes":[2-9]' "$work/fleet.json"; then
    ok=true; break
  fi
  sleep 0.1
done
if [ "$ok" != true ]; then
  echo "obs-smoke: fleet-traces never stitched trace $TRACE_ID across processes:" >&2
  cat "$work/fleet.json" >&2
  exit 1
fi
echo "obs-smoke: stitched trace spans router + backend"

# Reshape the fleet to backend 2 alone: the router journals the
# topology change, and the warm transfer rehomes backend 1's hot
# plan-cache entry (the searchtime plan above) onto backend 2, which
# journals the accepted import.
echo "obs-smoke: reshaping topology to trigger a warm transfer"
curl -fsS -X PUT -H 'Content-Type: application/json' \
  -d "{\"backends\": [\"http://$b2\"]}" \
  "http://$router/admin/topology" >/dev/null

echo "obs-smoke: checking the event journals"
curl -fsS "http://$debug/debug/events?kind=topology_change" >"$work/router-events.json"
grep -q '"kind":"topology_change"' "$work/router-events.json" || {
  echo "obs-smoke: router journalled no topology_change:" >&2
  cat "$work/router-events.json" >&2; exit 1; }
curl -fsS "http://$b2/debug/events?kind=snapshot_import" >"$work/backend-events.json"
grep -q '"kind":"snapshot_import"' "$work/backend-events.json" || {
  echo "obs-smoke: backend 2 journalled no snapshot_import after the warm transfer:" >&2
  cat "$work/backend-events.json" >&2; exit 1; }

echo "obs-smoke: PASS (stitched traces + live journals on every process)"
