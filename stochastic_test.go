package linesearch

import (
	"math"
	"testing"

	"linesearch/internal/strategy"
)

// TestSearchTimeWithSpeedsUnitMatches: at unit speeds (nil, explicit
// ones, or a broadcast 1) the order-statistic path must reproduce the
// compiled kernel's SearchTime exactly.
func TestSearchTimeWithSpeedsUnitMatches(t *testing.T) {
	s, err := NewWithStrategy("proportional", 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{1, -2.5, 7, 31.4, -100} {
		want, err := s.SearchTime(x)
		if err != nil {
			t.Fatal(err)
		}
		for _, speeds := range [][]float64{nil, {1}, {1, 1, 1}} {
			got, err := s.SearchTimeWithSpeeds(x, speeds)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("x=%g speeds=%v: %g, want SearchTime %g", x, speeds, got, want)
			}
		}
	}
}

// TestSearchTimeWithSpeedsScaling: a uniform speed v divides every
// detection time by v, and making one robot faster never hurts.
func TestSearchTimeWithSpeedsScaling(t *testing.T) {
	s, err := NewWithStrategy("doubling", 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	const x = 13.0
	unit, err := s.SearchTime(x)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := s.SearchTimeWithSpeeds(x, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fast-unit/2) > 1e-12*unit {
		t.Errorf("broadcast speed 2: %g, want %g", fast, unit/2)
	}
	mixed, err := s.SearchTimeWithSpeeds(x, []float64{1, 4, 1})
	if err != nil {
		t.Fatal(err)
	}
	if mixed > unit+1e-12*unit {
		t.Errorf("speeding one robot up worsened detection: %g > %g", mixed, unit)
	}
}

func TestSearchTimeWithSpeedsValidation(t *testing.T) {
	s, err := New(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, speeds := range [][]float64{
		{0}, {-1}, {math.NaN()}, {math.Inf(1)}, {1, 2}, {1, 2, 3, 4},
	} {
		if _, err := s.SearchTimeWithSpeeds(4, speeds); err == nil {
			t.Errorf("speeds %v accepted", speeds)
		}
	}
}

// TestExpectedSearchTime: p = 0 on a deterministic plan degenerates to
// the worst case, coins only delay, and a divergent coin reports +Inf.
func TestExpectedSearchTime(t *testing.T) {
	s, err := NewWithStrategy("doubling", 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	const x = 8.0
	worst, err := s.SearchTime(x)
	if err != nil {
		t.Fatal(err)
	}
	det, err := s.ExpectedSearchTime(x, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(det-worst) > 1e-9*worst {
		t.Errorf("p=0 expected time %g, want worst case %g", det, worst)
	}
	coin, err := s.ExpectedSearchTime(x, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if coin <= worst {
		t.Errorf("p=0.5 expected time %g not above worst case %g", coin, worst)
	}
	// A uniform speed divides the expectation like every other time.
	fast, err := s.ExpectedSearchTime(x, 0.5, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fast-coin/2) > 1e-9*coin {
		t.Errorf("speed-2 expected time %g, want %g", fast, coin/2)
	}
	for _, p := range []float64{-0.1, 1, 1.5, math.NaN()} {
		if _, err := s.ExpectedSearchTime(x, p, nil); err == nil {
			t.Errorf("miss probability %g accepted", p)
		}
	}
}

// TestExpectedSearchTimeDiverges: one surviving robot on the doubling
// walk with p = 0.75 has excursion decay R = p^2*2 > 1.
func TestExpectedSearchTimeDiverges(t *testing.T) {
	s, err := NewWithStrategy("doubling", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	et, err := s.ExpectedSearchTime(4, 0.75, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(et, 1) {
		t.Errorf("divergent expectation reported %g, want +Inf", et)
	}
}

// TestExpectedSearchTimeByzantineRejected: the voting rule waits for
// multiple confirmations, outside the expectation's model.
func TestExpectedSearchTimeByzantineRejected(t *testing.T) {
	s, err := NewWithStrategy("byzantine", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExpectedSearchTime(4, 0.5, nil); err == nil {
		t.Error("byzantine plan accepted an expected-time query")
	}
}

// TestPFaultySearcher exercises the half-line family end to end
// through the public API: the plan builds, exposes its model, uses its
// own miss probability at p = 0, and reports the asymptotic expected
// ratio as its figure of merit.
func TestPFaultySearcher(t *testing.T) {
	s, err := NewWithStrategy("pfaulty:0.5:2", 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.FaultModel(); got != "pfaulty" {
		t.Errorf("fault model %q, want pfaulty", got)
	}
	if got := s.DetectionRank(); got != 2 {
		t.Errorf("detection rank %d, want f+1 = 2", got)
	}
	et, err := s.ExpectedSearchTime(9, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(et, 1) || et <= 9 {
		t.Errorf("expected time %g for x=9: want finite and above the distance", et)
	}
	// The left half-line is never covered: deterministic detection
	// fails there, and the worst-case ratio is unbounded.
	if wt, err := s.SearchTime(-9); err != nil || !math.IsInf(wt, 1) {
		t.Errorf("left-side search time %g, %v; want +Inf", wt, err)
	}
	ratio, ok := s.ExpectedCompetitiveRatio()
	pEff := 0.5 * 0.5 // two survivors on the shared trajectory
	if want := strategy.AsymptoticExpectedRatio(2, pEff); !ok || math.Abs(ratio-want) > 1e-12*want {
		t.Errorf("expected CR %g (ok=%v), want %g", ratio, ok, want)
	}
	if _, ok := mustSearcher(t, 3, 1).ExpectedCompetitiveRatio(); ok {
		t.Error("deterministic plan claims an expected competitive ratio")
	}
}
