module linesearch

go 1.22
