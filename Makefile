# Reproduction targets for "Search on a Line with Faulty Robots".

GO ?= go

.PHONY: all build test race bench bench-paper bench-check bench-pr5 bench-pr5-check bench-pr6 bench-pr6-check bench-pr7 bench-pr7-check bench-pr10 bench-pr10-check lint chaos chaos-partition cluster-smoke obs-smoke fuzz repro data serve sweep clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Compiled-kernel benchmarks (cold compile, hot eval, batch sizes
# 1/100/10000, one sweep cell) with their pre-kernel sim references.
# Writes the machine-readable report to BENCH_pr3.json; compare against
# a baseline with `make bench-check` or cmd/benchjson -compare.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/compiled | tee /dev/stderr \
		| $(GO) run ./cmd/benchjson -o BENCH_pr3.json

# Fail when BENCH_pr3.json regresses allocs/op more than 2x against the
# checked-in baseline.
bench-check: bench
	$(GO) run ./cmd/benchjson -compare BENCH_baseline.json BENCH_pr3.json

# Telemetry-overhead benchmarks: the untraced request fast path (must
# stay 0 allocs/op), traced requests, traceparent parsing, histogram
# observation, and the compiled hot paths through the ctx-aware entry
# points. Writes BENCH_pr5.json.
bench-pr5:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/telemetry ./internal/compiled | tee /dev/stderr \
		| $(GO) run ./cmd/benchjson -o BENCH_pr5.json

# Fail when the compiled hot paths regress allocs/op against the PR 3
# report (benchjson compares only the benchmarks both reports share).
bench-pr5-check: bench-pr5
	$(GO) run ./cmd/benchjson -compare BENCH_pr3.json BENCH_pr5.json

# Byzantine-era benchmarks: the crash hot paths plus the vote-rule
# batch path (BenchmarkByzantineBatch). Writes BENCH_pr6.json.
bench-pr6:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/telemetry ./internal/compiled | tee /dev/stderr \
		| $(GO) run ./cmd/benchjson -o BENCH_pr6.json

# Fail when the crash-fault kernel regresses allocs/op against the PR 5
# report — the vote rule must not cost the crash path anything.
bench-pr6-check: bench-pr6
	$(GO) run ./cmd/benchjson -compare BENCH_pr5.json BENCH_pr6.json

# Stochastic-engine-era benchmarks: the crash hot paths plus the
# discrete-event scheduler (dispatch must stay 0 allocs/event in steady
# state), the p-faulty search sampler, the Monte-Carlo driver and the
# expected-time series. Writes BENCH_pr7.json.
bench-pr7:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/telemetry ./internal/compiled ./internal/engine | tee /dev/stderr \
		| $(GO) run ./cmd/benchjson -o BENCH_pr7.json

# Fail when the deterministic kernel regresses allocs/op against the
# PR 6 report — the stochastic engine must not cost the crash path
# anything.
bench-pr7-check: bench-pr7
	$(GO) run ./cmd/benchjson -compare BENCH_pr6.json BENCH_pr7.json

# Observability-era benchmarks: the PR 7 set plus the event journal
# (live Record and the nil-journal disabled path, both 0 allocs/op) and
# outbound traceparent propagation on the untraced hot path. Writes
# BENCH_pr10.json.
bench-pr10:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/telemetry ./internal/telemetry/journal ./internal/compiled ./internal/engine | tee /dev/stderr \
		| $(GO) run ./cmd/benchjson -o BENCH_pr10.json

# Fail when the untraced request path or the kernels regress allocs/op
# against the PR 7 report — the observability plane must be free when
# it is off.
bench-pr10-check: bench-pr10
	$(GO) run ./cmd/benchjson -compare BENCH_pr7.json BENCH_pr10.json

# Static analysis beyond go vet. staticcheck is installed by CI; run
# `go install honnef.co/go/tools/cmd/staticcheck@2025.1` to get it
# locally.
lint:
	$(GO) vet ./...
	staticcheck ./...

# Fault-injection chaos suite under the race detector: 24 deterministic
# schedules, the kill-and-resume torture test, and a randomized-seed
# soak (seeds are logged, so failures replay deterministically).
chaos:
	$(GO) test -race -count=1 -run 'Chaos|KillAndResume|FaultInjection|FaultPoint' \
		./internal/sweep ./internal/faultpoint -chaos.soak=45s

# Partition chaos suite under the race detector: SWIM gossip under
# split-brain and asymmetric link faults, replication hinted handoff
# and anti-entropy convergence after a heal, and the kill-home-mid-
# sweep zero-loss acceptance test. Every partition is injected with
# seeded fault points, so a failure replays deterministically.
chaos-partition:
	$(GO) test -race -count=1 -v -run 'Partition' \
		./internal/membership ./internal/cluster

# Sharded-fleet smoke under the race detector: the consistent-hash
# ring properties, the router integration suite (failover, warm
# transfer, chaos kill/restart), and the loadgen-driven p99 gate
# against the checked-in budget (cmd/loadgen/testdata/p99_budget.json).
cluster-smoke:
	$(GO) test -race -count=1 ./internal/cluster ./cmd/linerouter
	$(GO) test -race -count=1 -run 'TestClusterSmoke' ./cmd/loadgen

# Observability smoke against real processes: two linesearchd backends
# and a linerouter on ephemeral ports; asserts one sampled request
# stitches across processes on /debug/fleet-traces and that a topology
# reshape leaves journal events on the router (topology_change) and the
# receiving backend (snapshot_import).
obs-smoke:
	bash scripts/obs-smoke.sh

# One benchmark per paper table/figure plus micro benchmarks.
bench-paper:
	$(GO) test -bench . -benchmem .

# Short fuzzing smoke: the public SearchTime entry point, the
# Byzantine vote-rule kernel against the exact engine, and the
# discrete-event scheduler against the closed-form simulator.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzSearchTime -fuzztime 30s .
	$(GO) test -run '^$$' -fuzz FuzzByzantineVote -fuzztime 30s ./internal/compiled
	$(GO) test -run '^$$' -fuzz FuzzEngineVsSim -fuzztime 30s ./internal/engine

# Regenerate every table and figure as text on stdout.
repro:
	$(GO) run ./cmd/paper

# Serve the library over JSON HTTP (plan cache, batch, metrics).
serve:
	$(GO) run ./cmd/linesearchd

# Run the default checkpointed parameter sweep in the foreground
# (interrupt with Ctrl-C; rerunning resumes). Datasets land in
# data/sweeps/ — see data/README.md for the schema.
sweep:
	$(GO) run ./cmd/linesweep -n 2,3,4,5,6,7,8,9,10,11 -f 1,2,3,4,5 \
		-strategies auto,doubling -betas 2.5,4

# Export every experiment's datasets as CSV and JSON under data/.
data:
	$(GO) run ./cmd/paper -csv data/csv -json data/json > /dev/null
	@echo "datasets written to data/csv and data/json"

clean:
	rm -rf data
	$(GO) clean ./...
