# Reproduction targets for "Search on a Line with Faulty Robots".

GO ?= go

.PHONY: all build test race bench repro data serve clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One benchmark per paper table/figure plus micro benchmarks.
bench:
	$(GO) test -bench . -benchmem .

# Regenerate every table and figure as text on stdout.
repro:
	$(GO) run ./cmd/paper

# Serve the library over JSON HTTP (plan cache, batch, metrics).
serve:
	$(GO) run ./cmd/linesearchd

# Export every experiment's datasets as CSV and JSON under data/.
data:
	$(GO) run ./cmd/paper -csv data/csv -json data/json > /dev/null
	@echo "datasets written to data/csv and data/json"

clean:
	rm -rf data
	$(GO) clean ./...
