package linesearch

import (
	"math"
	"strings"
	"testing"
)

// TestByzantineSearcherAccessors checks that the fault-model surface
// reports the configured detection rule and that detection waits for
// the (f+votes)-th distinct visitor.
func TestByzantineSearcherAccessors(t *testing.T) {
	s, err := NewSearcher(5, 1, WithFaultModel("byzantine"))
	if err != nil {
		t.Fatal(err)
	}
	if s.FaultModel() != "byzantine" {
		t.Errorf("FaultModel() = %q", s.FaultModel())
	}
	if s.Votes() != 2 || s.DetectionRank() != 3 {
		t.Errorf("Votes() = %d, DetectionRank() = %d, want 2, 3", s.Votes(), s.DetectionRank())
	}
	st, err := s.SearchTime(7)
	if err != nil {
		t.Fatal(err)
	}
	kth, err := s.KthVisitTime(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st-kth) > 1e-12 {
		t.Errorf("SearchTime %v != KthVisitTime(rank) %v", st, kth)
	}

	// Crash searchers report the paper's model.
	c, err := New(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.FaultModel() != "crash" || c.Votes() != 1 || c.DetectionRank() != 2 {
		t.Errorf("crash searcher reports %q votes=%d rank=%d", c.FaultModel(), c.Votes(), c.DetectionRank())
	}
}

// TestByzantineReducesToCrashAtRank pins the voting rule's closed form:
// a byzantine searcher's worst case equals the crash searcher at the
// effective budget rank-1.
func TestByzantineReducesToCrashAtRank(t *testing.T) {
	b, err := NewSearcher(5, 1, WithFaultModel("byzantine"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{1, -3.5, 7, -42, 99.25} {
		tb, err := b.SearchTime(x)
		if err != nil {
			t.Fatal(err)
		}
		tc, err := c.SearchTime(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(tb-tc) > 1e-12 {
			t.Errorf("x=%g: byzantine(5,1) %v != crash(5,2) %v", x, tb, tc)
		}
	}
	crB, err := b.CompetitiveRatio()
	if err != nil {
		t.Fatal(err)
	}
	crC, err := c.CompetitiveRatio()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(crB-crC) > 1e-12 {
		t.Errorf("CR %v != %v", crB, crC)
	}
}

// TestWithVotes exercises explicit thresholds and their validation.
func TestWithVotes(t *testing.T) {
	s, err := NewSearcher(5, 1, WithFaultModel("byzantine"), WithVotes(3))
	if err != nil {
		t.Fatal(err)
	}
	if s.Votes() != 3 || s.DetectionRank() != 4 {
		t.Errorf("votes=%d rank=%d, want 3, 4", s.Votes(), s.DetectionRank())
	}
	if _, err := NewSearcher(5, 1, WithVotes(2)); err == nil {
		t.Error("WithVotes without byzantine model accepted")
	}
	if _, err := NewSearcher(5, 1, WithFaultModel("byzantine"), WithVotes(0)); err == nil {
		t.Error("zero vote threshold accepted")
	}
	if _, err := NewSearcher(5, 1, WithFaultModel("lying")); err == nil {
		t.Error("unknown fault model accepted")
	}
	// Rank 6 > n=5 is infeasible.
	if _, err := NewSearcher(5, 1, WithFaultModel("byzantine"), WithVotes(5)); err == nil {
		t.Error("infeasible vote threshold accepted")
	}
	// Double byzantine selection is ambiguous.
	if _, err := NewSearcher(5, 1, WithFaultModel("byzantine"), WithStrategy("byzantine")); err == nil {
		t.Error("byzantine model over byzantine strategy accepted")
	}
}

// TestWithFaultModelComposesBase checks that an explicit crash strategy
// becomes the voting family's base.
func TestWithFaultModelComposesBase(t *testing.T) {
	s, err := NewSearcher(5, 1, WithFaultModel("byzantine"), WithStrategy("doubling"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Strategy() != "byzantine:doubling" {
		t.Errorf("Strategy() = %q", s.Strategy())
	}
	cr, err := s.CompetitiveRatio()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cr-9) > 1e-12 {
		t.Errorf("doubling base CR %v, want 9", cr)
	}
	// crash model is the explicit default.
	c, err := NewSearcher(5, 1, WithFaultModel("crash"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Strategy() != "twogroup" || c.FaultModel() != "crash" {
		t.Errorf("crash searcher: %q / %q", c.Strategy(), c.FaultModel())
	}
}

// TestTimelineFaults drives the liar surface end to end: a lying robot
// plants exactly one false claim at the mirror position, truthful
// claims accumulate, and detection still fires at the worst-case time.
func TestTimelineFaults(t *testing.T) {
	s, err := NewSearcher(5, 1, WithFaultModel("byzantine"))
	if err != nil {
		t.Fatal(err)
	}
	const x = 7.0
	worst := s.WorstFaultSet(x)
	if len(worst) != 1 {
		t.Fatalf("worst fault set %v, want 1 robot", worst)
	}
	want, err := s.SearchTime(x)
	if err != nil {
		t.Fatal(err)
	}
	events, err := s.TimelineFaults(x, nil, worst, 4*want)
	if err != nil {
		t.Fatal(err)
	}
	var claims, falseClaims, detects int
	var detectT float64
	for _, e := range events {
		switch e.Kind {
		case "claim":
			claims++
		case "false-claim":
			falseClaims++
			if e.X != -x {
				t.Errorf("false claim at %g, want mirror %g", e.X, -x)
			}
			if e.Robot != worst[0] {
				t.Errorf("false claim by robot %d, want liar %d", e.Robot, worst[0])
			}
		case "detect":
			detects++
			detectT = e.T
		}
	}
	if claims < 2 || falseClaims != 1 || detects != 1 {
		t.Fatalf("claims=%d false=%d detects=%d", claims, falseClaims, detects)
	}
	if math.Abs(detectT-want) > 1e-12 {
		t.Errorf("detect at %v, want SearchTime %v", detectT, want)
	}

	// Validation: liars need the byzantine model, assignments must be
	// disjoint and within budget.
	c, err := New(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.TimelineFaults(x, nil, []int{0}, 100); err == nil ||
		!strings.Contains(err.Error(), "byzantine") {
		t.Errorf("crash plan accepted a liar: %v", err)
	}
	if _, err := s.TimelineFaults(x, []int{0}, []int{0}, 100); err == nil {
		t.Error("overlapping silent/liar lists accepted")
	}
	if _, err := s.TimelineFaults(x, []int{0}, []int{1}, 100); err == nil {
		t.Error("over-budget assignment accepted")
	}
	if _, err := s.TimelineFaults(x, nil, []int{9}, 100); err == nil {
		t.Error("out-of-range index accepted")
	}
	// Crash plans still take silent robots.
	if _, err := c.TimelineFaults(x, []int{0}, nil, 100); err != nil {
		t.Errorf("crash plan rejected a silent robot: %v", err)
	}
}
