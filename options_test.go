package linesearch

import (
	"math"
	"testing"
)

func TestNewSearcherDefaults(t *testing.T) {
	s, err := NewSearcher(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Strategy() != "proportional" || s.MinDistance() != 1 {
		t.Errorf("defaults: strategy %q, minDistance %v", s.Strategy(), s.MinDistance())
	}
}

func TestNewSearcherWithStrategy(t *testing.T) {
	s, err := NewSearcher(3, 1, WithStrategy("doubling"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Strategy() != "doubling" {
		t.Errorf("strategy %q", s.Strategy())
	}
	if _, err := NewSearcher(3, 1, WithStrategy("")); err == nil {
		t.Error("empty strategy accepted")
	}
	if _, err := NewSearcher(3, 1, WithStrategy("bogus")); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestNewSearcherWithMinDistance(t *testing.T) {
	const d = 25.0
	s, err := NewSearcher(3, 1, WithMinDistance(d))
	if err != nil {
		t.Fatal(err)
	}
	if s.MinDistance() != d {
		t.Fatalf("MinDistance = %v", s.MinDistance())
	}
	// The CR over |x| >= d is the Theorem 1 value.
	sup, witness, err := s.MeasureCR()
	if err != nil {
		t.Fatal(err)
	}
	want, err := CompetitiveRatio(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sup-want) > 1e-6 {
		t.Errorf("scaled CR = %v, want %v", sup, want)
	}
	if math.Abs(witness) < d {
		t.Errorf("witness %v below min distance %v", witness, d)
	}

	// The scaled guarantee holds pointwise: every target at or beyond d
	// is found within CR times its distance. (Individual targets may be
	// found faster or slower than under the unit normalisation — the
	// ratio function oscillates within each expansion period — but the
	// supremum is invariant.)
	for _, x := range []float64{d, -1.7 * d, 10 * d, -123 * d} {
		got, err := s.SearchTime(x)
		if err != nil {
			t.Fatalf("SearchTime(%v): %v", x, err)
		}
		if got > want*math.Abs(x)+1e-6 {
			t.Errorf("SearchTime(%v) = %v exceeds CR*|x| = %v", x, got, want*math.Abs(x))
		}
	}
}

func TestNewSearcherWithMinDistanceValidation(t *testing.T) {
	for _, d := range []float64{0, -1, math.Inf(1)} {
		if _, err := NewSearcher(3, 1, WithMinDistance(d)); err == nil {
			t.Errorf("WithMinDistance(%v) accepted", d)
		}
	}
}

func TestNewSearcherMinDistanceWithTwoGroup(t *testing.T) {
	// The two-group sweep ignores the hint but must still work.
	s, err := NewSearcher(6, 2, WithMinDistance(50))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.SearchTime(100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 100 {
		t.Errorf("SearchTime(100) = %v, want 100", got)
	}
}

func TestNewSearcherCombinedOptions(t *testing.T) {
	s, err := NewSearcher(3, 1, WithStrategy("cone:2.5"), WithMinDistance(4))
	if err != nil {
		t.Fatal(err)
	}
	if s.Strategy() != "cone:2.5" || s.MinDistance() != 4 {
		t.Errorf("strategy %q, minDistance %v", s.Strategy(), s.MinDistance())
	}
}

func TestRobotsNeeded(t *testing.T) {
	tests := []struct {
		f     int
		maxCR float64
		want  int
	}{
		{1, 9, 2},    // n = f+1 achieves exactly 9
		{1, 8.9, 3},  // need one more robot to beat 9
		{1, 5.24, 3}, // A(3,1) = 5.233
		{1, 5.2, 4},  // must jump to the trivial regime
		{1, 1, 4},    // trivial regime
		{2, 4.44, 5}, // A(5,2) = 4.434
		{2, 4.4, 6},
		{0, 9, 1}, // a lone reliable robot doubles at ratio 9
		{0, 3, 2}, // two reliable robots sweep at ratio 1
	}
	for _, tt := range tests {
		got, err := RobotsNeeded(tt.f, tt.maxCR)
		if err != nil {
			t.Errorf("RobotsNeeded(%d, %v): %v", tt.f, tt.maxCR, err)
			continue
		}
		if got != tt.want {
			t.Errorf("RobotsNeeded(%d, %v) = %d, want %d", tt.f, tt.maxCR, got, tt.want)
		}
	}
}

func TestRobotsNeededValidation(t *testing.T) {
	if _, err := RobotsNeeded(-1, 5); err == nil {
		t.Error("negative f accepted")
	}
	if _, err := RobotsNeeded(2, 0.5); err == nil {
		t.Error("maxCR < 1 accepted")
	}
}

func TestRobotsNeededConsistent(t *testing.T) {
	// The returned n must meet the bound and n-1 must not.
	for f := 1; f <= 30; f++ {
		for _, maxCR := range []float64{3.5, 4, 5, 7, 9} {
			n, err := RobotsNeeded(f, maxCR)
			if err != nil {
				t.Fatalf("RobotsNeeded(%d, %v): %v", f, maxCR, err)
			}
			cr, err := CompetitiveRatio(n, f)
			if err != nil {
				t.Fatal(err)
			}
			if cr > maxCR+1e-9 {
				t.Errorf("f=%d maxCR=%v: n=%d has CR %v", f, maxCR, n, cr)
			}
			if n > f+1 {
				prev, err := CompetitiveRatio(n-1, f)
				if err != nil {
					t.Fatal(err)
				}
				if prev <= maxCR-1e-9 {
					t.Errorf("f=%d maxCR=%v: n-1=%d already has CR %v", f, maxCR, n-1, prev)
				}
			}
		}
	}
}

func TestFaultsTolerable(t *testing.T) {
	tests := []struct {
		n     int
		maxCR float64
		want  int
	}{
		{2, 9, 1},
		{3, 9, 2},
		{3, 6, 1},   // A(3,1) = 5.233 fits, f=2 would be 9
		{5, 4.5, 2}, // A(5,2) = 4.434
		{5, 7, 3},   // A(5,3) = 6.764
		{6, 1, 2},   // trivial regime with f = 2
		{1, 9, 0},
	}
	for _, tt := range tests {
		got, err := FaultsTolerable(tt.n, tt.maxCR)
		if err != nil {
			t.Errorf("FaultsTolerable(%d, %v): %v", tt.n, tt.maxCR, err)
			continue
		}
		if got != tt.want {
			t.Errorf("FaultsTolerable(%d, %v) = %d, want %d", tt.n, tt.maxCR, got, tt.want)
		}
	}
}

func TestFaultsTolerableValidation(t *testing.T) {
	if _, err := FaultsTolerable(0, 5); err == nil {
		t.Error("n = 0 accepted")
	}
	if _, err := FaultsTolerable(3, 0.5); err == nil {
		t.Error("maxCR < 1 accepted")
	}
}

// TestInverseDesignRoundTrip: RobotsNeeded and FaultsTolerable are
// mutually consistent.
func TestInverseDesignRoundTrip(t *testing.T) {
	for f := 1; f <= 20; f++ {
		for _, maxCR := range []float64{3.3, 4.2, 6.5, 9} {
			n, err := RobotsNeeded(f, maxCR)
			if err != nil {
				t.Fatal(err)
			}
			back, err := FaultsTolerable(n, maxCR)
			if err != nil {
				t.Fatal(err)
			}
			if back < f {
				t.Errorf("f=%d maxCR=%v: n=%d tolerates only %d faults", f, maxCR, n, back)
			}
		}
	}
}
