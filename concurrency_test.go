package linesearch

import (
	"sync"
	"testing"
)

// TestSearcherConcurrentUse exercises the documented guarantee that a
// Searcher is safe for concurrent use: parallel queries across all API
// surfaces, checked under -race.
func TestSearcherConcurrentUse(t *testing.T) {
	s, err := New(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.SearchTime(17.5)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := s.SearchTime(17.5)
			if err != nil {
				errs <- err
			} else if got != want {
				t.Errorf("goroutine %d: SearchTime = %v, want %v", g, got, want)
			}
			if _, _, err := s.MeasureCR(); err != nil {
				errs <- err
			}
			if _, err := s.Timeline(3, []int{0, 1}, 50); err != nil {
				errs <- err
			}
			if _, err := s.MonteCarlo(50, int64(g)); err != nil {
				errs <- err
			}
			if _, err := s.Positions(float64(g) + 1); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
