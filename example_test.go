package linesearch_test

import (
	"fmt"

	"linesearch"
)

// The recommended searcher for three robots with one possible fault is
// the paper's proportional schedule algorithm A(3, 1).
func ExampleNew() {
	s, err := linesearch.New(3, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(s.Strategy())
	cr, _ := s.CompetitiveRatio()
	fmt.Printf("%.4f\n", cr)
	// Output:
	// proportional
	// 5.2331
}

// Bounds returns every closed-form guarantee of the paper for a pair.
func ExampleBounds() {
	b, err := linesearch.Bounds(5, 2)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("upper %.4f lower %.4f beta* %.4f expansion %.4f\n", b.Upper, b.Lower, b.Beta, b.Expansion)
	// Output:
	// upper 4.4343 lower 3.5704 beta* 1.4000 expansion 6.0000
}

// SearchTime is the worst case over every fault assignment: the visit
// of the (f+1)-st distinct robot.
func ExampleSearcher_SearchTime() {
	s, _ := linesearch.New(3, 1)
	t, _ := s.SearchTime(4)
	fmt.Printf("%.4f\n", t)
	// The target at x = 4 is a turning point of robot 0; with robot 0's
	// predecessor faulty the second distinct visitor arrives at 14.6667,
	// ratio 3.6667 < CR = 5.2331.
	// Output:
	// 14.6667
}

// With n >= 2f+2 robots the trivial two-group sweep finds every target
// at time exactly equal to its distance.
func ExampleNew_trivialRegime() {
	s, _ := linesearch.New(6, 2)
	fmt.Println(s.Strategy())
	t, _ := s.SearchTime(42)
	fmt.Println(t)
	// Output:
	// twogroup
	// 42
}

// CompetitiveRatio and LowerBound give the paper's closed forms without
// building a searcher.
func ExampleCompetitiveRatio() {
	cr, _ := linesearch.CompetitiveRatio(2, 1) // n = f+1: doubling is optimal
	lb, _ := linesearch.LowerBound(2, 1)
	fmt.Printf("%.0f %.0f\n", cr, lb)
	// Output:
	// 9 9
}

// RobotsNeeded inverts Theorem 1: how large a fleet guarantees a given
// ratio under f faults?
func ExampleRobotsNeeded() {
	n, _ := linesearch.RobotsNeeded(2, 4.5) // tolerate 2 faults within 4.5x
	fmt.Println(n)
	// Output:
	// 5
}

// NewSearcher accepts functional options: an explicit strategy and a
// known minimal target distance.
func ExampleNewSearcher() {
	s, err := linesearch.NewSearcher(3, 1,
		linesearch.WithStrategy("cone:2"),
		linesearch.WithMinDistance(10),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(s.Strategy(), s.MinDistance())
	// Output:
	// cone:2 10
}
