package linesearch

import (
	"fmt"
	"math"
	"testing"
)

// TestTheorem1AcrossTheWholeRegime is the repository's strongest single
// check: for EVERY proportional pair with n <= 13, the realised
// algorithm's measured competitive ratio equals Theorem 1's closed form,
// and the Theorem 2 adversary extracts at least its certified bound.
// This exercises geometry, trajectories, schedule construction, the
// exact simulator and the adversary in one pass.
func TestTheorem1AcrossTheWholeRegime(t *testing.T) {
	if testing.Short() {
		t.Skip("full-regime sweep skipped in -short mode")
	}
	for n := 2; n <= 13; n++ {
		for f := 0; f < n; f++ {
			if n >= 2*f+2 || n <= f {
				continue // outside the proportional regime
			}
			n, f := n, f
			t.Run(fmt.Sprintf("n=%d_f=%d", n, f), func(t *testing.T) {
				t.Parallel()
				s, err := New(n, f)
				if err != nil {
					t.Fatal(err)
				}
				analytic, err := s.CompetitiveRatio()
				if err != nil {
					t.Fatal(err)
				}
				measured, witness, err := s.MeasureCR()
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(measured-analytic) > 1e-6 {
					t.Errorf("measured CR %v != Theorem 1 %v (witness x=%v)", measured, analytic, witness)
				}
				alpha, ratio, err := s.VerifyLowerBound()
				if err != nil {
					t.Fatal(err)
				}
				if ratio < alpha-1e-9 {
					t.Errorf("adversary extracted only %v < alpha %v", ratio, alpha)
				}
				if analytic < alpha-1e-9 {
					t.Errorf("Theorem 1 value %v below Theorem 2 bound %v", analytic, alpha)
				}
			})
		}
	}
}
