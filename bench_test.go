package linesearch

// One benchmark per paper artifact (tables and figures) plus micro
// benchmarks for the hot paths. Each experiment benchmark regenerates
// the corresponding table or figure end-to-end — workload generation,
// sweep, measurement and rendering — so `go test -bench .` reproduces
// the paper's entire evaluation.

import (
	"testing"

	"linesearch/internal/analysis"
	"linesearch/internal/experiments"
	"linesearch/internal/schedule"
	"linesearch/internal/sim"
	"linesearch/internal/strategy"
)

// benchExperiment runs a registered experiment once per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Report) == 0 {
			b.Fatal("empty report")
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (bounds and expansion factors for
// the paper's twelve (n, f) pairs).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFigure5Left regenerates Figure 5 (left): CR of A(2f+1, f)
// over n = 3..20.
func BenchmarkFigure5Left(b *testing.B) { benchExperiment(b, "fig5left") }

// BenchmarkFigure5Right regenerates Figure 5 (right): the asymptotic CR
// over a = n/f in (1, 2).
func BenchmarkFigure5Right(b *testing.B) { benchExperiment(b, "fig5right") }

// BenchmarkLowerBound regenerates the Theorem 2 table: root solving plus
// the adversarial ladder game against A(n, f).
func BenchmarkLowerBound(b *testing.B) { benchExperiment(b, "lowerbound") }

// BenchmarkAsymptotics regenerates the Corollary 1 / Theorem 2 sandwich.
func BenchmarkAsymptotics(b *testing.B) { benchExperiment(b, "asymptotics") }

// BenchmarkEmpiricalCRValidation regenerates experiment E6: simulated CR
// vs the Theorem 1 closed form for every Table 1 pair.
func BenchmarkEmpiricalCRValidation(b *testing.B) { benchExperiment(b, "verify") }

// BenchmarkBetaSweep regenerates the E7 ablation: CR as a function of
// the cone slope for three (n, f) pairs.
func BenchmarkBetaSweep(b *testing.B) { benchExperiment(b, "betasweep") }

// BenchmarkSpacing regenerates the Definition 2 ablation: proportional
// vs uniform turning-point spacing at the same beta*.
func BenchmarkSpacing(b *testing.B) { benchExperiment(b, "spacing") }

// BenchmarkTurnCost regenerates the turn-cost extension sweep.
func BenchmarkTurnCost(b *testing.B) { benchExperiment(b, "turncost") }

// BenchmarkKVisit regenerates the generalised-Lemma-5 verification.
func BenchmarkKVisit(b *testing.B) { benchExperiment(b, "kvisit") }

// BenchmarkFigure1 through BenchmarkFigure7 regenerate the paper's
// illustrative diagrams from the same engine as the experiments.
func BenchmarkFigure1(b *testing.B) { benchExperiment(b, "fig1") }
func BenchmarkFigure2(b *testing.B) { benchExperiment(b, "fig2") }
func BenchmarkFigure3(b *testing.B) { benchExperiment(b, "fig3") }
func BenchmarkFigure4(b *testing.B) { benchExperiment(b, "fig4") }
func BenchmarkFigure6(b *testing.B) { benchExperiment(b, "fig6") }
func BenchmarkFigure7(b *testing.B) { benchExperiment(b, "fig7") }

// --- micro benchmarks -------------------------------------------------

// BenchmarkScheduleBuild measures constructing the realised A(11, 5):
// eleven trajectories with backward extension and start-up legs.
func BenchmarkScheduleBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := schedule.NewOptimal(11, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchTime measures one worst-case search-time query against
// A(5, 2) (five first-visit computations plus a sort).
func BenchmarkSearchTime(b *testing.B) {
	plan, err := sim.FromStrategy(strategy.Proportional{}, 5, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := plan.SearchTime(437.25); got <= 0 {
			b.Fatal("non-positive search time")
		}
	}
}

// BenchmarkEmpiricalCR measures a full empirical competitive-ratio
// search over A(3, 1) with default options.
func BenchmarkEmpiricalCR(b *testing.B) {
	plan, err := sim.FromStrategy(strategy.Proportional{}, 3, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.EmpiricalCR(sim.CROptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTheorem2Root measures solving the lower-bound equation for
// n = 41.
func BenchmarkTheorem2Root(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := analysis.Theorem2Alpha(41); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonteCarlo measures 1000 random-fault searches against
// A(5, 2).
func BenchmarkMonteCarlo(b *testing.B) {
	plan, err := sim.FromStrategy(strategy.Proportional{}, 5, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.MonteCarlo(sim.MCConfig{Trials: 1000, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearcherNew measures the public-API constructor for the
// largest Table 1 pair.
func BenchmarkSearcherNew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := New(41, 20); err != nil {
			b.Fatal(err)
		}
	}
}
