// Command linesearchd serves the linesearch library over JSON HTTP: a
// long-lived daemon with a plan cache (constructing a search plan is
// the expensive, perfectly cacheable step), batch evaluation over a
// bounded worker pool, and built-in metrics.
//
// Usage:
//
//	linesearchd [-addr :8080] [-cache 128] [-workers 0] [-max-batch 1024]
//	            [-timeout 15s] [-log text|json] [-quiet]
//	            [-sweep-dir data/sweeps] [-sweep-workers 0] [-sweep-jobs 2]
//	            [-snapshot-dir data/snapshots]
//	            [-trace-sample 0.1] [-trace-buffer 256] [-debug-addr ""]
//	            [-join http://peer:8080,...] [-advertise http://host:8080]
//	            [-gossip-interval 1s] [-replica-dir data/replicas]
//	            [-replication-rf 2] [-anti-entropy-interval 30s]
//
// Endpoints (see internal/service):
//
//	GET  /v1/plan?n=3&f=1          plan parameters, CR, bounds, turning points
//	GET  /v1/searchtime?n=3&f=1&x=7.5
//	GET  /v1/timeline?n=3&f=1&x=2
//	GET  /v1/lowerbound?n=3&f=1
//	POST /v1/batch                 {"queries": [{"op": "plan", "n": 3, "f": 1}, ...]}
//	POST /v1/sweeps                submit a background parameter sweep (checkpointed, resumable)
//	GET  /v1/sweeps                list sweep jobs; /v1/sweeps/{id} for status, .../result for data
//	GET  /v1/cache/snapshot        export hot plan-cache entries (the router's warm transfer)
//	PUT  /v1/cache/snapshot        import a snapshot, prewarming the plan cache
//	GET  /healthz
//	GET  /metrics                  JSON by default; Prometheus text under Accept: text/plain
//	GET  /debug/traces             recent/slowest sampled request traces
//	GET  /debug/events             structured event journal (membership, breaker, hints, quarantine)
//
// With -join set, the daemon gossips SWIM-style membership with its
// peers (POST /gossip), streams every fsynced sweep checkpoint to the
// next replication-factor-1 ring owners (PUT /v1/replica/...), spools
// hinted handoffs for peers that are down, and runs periodic
// anti-entropy so replicas converge after partitions. Routers started
// with -join subscribe to the same gossip and rebuild their rings
// without any PUT /admin/topology.
//
// With -debug-addr set, a second listener (keep it loopback-only; the
// profiling endpoints can stall the process and expose internals)
// additionally serves net/http/pprof under /debug/pprof/ plus the same
// /debug/traces, /metrics and /healthz.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight
// requests get a drain window before the listener closes, and running
// sweeps are checkpointed so the next start resumes them when their
// specs are resubmitted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"linesearch/internal/cluster"
	"linesearch/internal/membership"
	"linesearch/internal/service"
	"linesearch/internal/sweep"
	"linesearch/internal/telemetry"
	"linesearch/internal/telemetry/journal"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "linesearchd:", err)
		os.Exit(1)
	}
}

// shutdownGrace is how long in-flight requests get to drain after a
// shutdown signal.
const shutdownGrace = 10 * time.Second

// run parses flags, binds the listener, and serves until ctx is
// cancelled (by signal in production, directly in tests). It prints
// one "listening on <addr>" line to out once the port is bound, so
// callers using ":0" can discover the ephemeral address.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("linesearchd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address (host:port; port 0 picks an ephemeral port)")
	cacheSize := fs.Int("cache", 128, "number of constructed plans kept in the LRU cache")
	workers := fs.Int("workers", 0, "batch worker pool size (0 = GOMAXPROCS)")
	maxBatch := fs.Int("max-batch", 1024, "maximum queries per batch request")
	timeout := fs.Duration("timeout", 15*time.Second, "per-request timeout (0 disables)")
	logFormat := fs.String("log", "text", "log format: text or json")
	quiet := fs.Bool("quiet", false, "suppress access logs (errors still logged)")
	sweepDir := fs.String("sweep-dir", filepath.Join("data", "sweeps"), "directory for sweep checkpoints and result datasets")
	sweepWorkers := fs.Int("sweep-workers", 0, "cell workers per running sweep job (0 = GOMAXPROCS)")
	sweepJobs := fs.Int("sweep-jobs", 2, "sweep jobs running concurrently (excess submissions queue)")
	snapshotDir := fs.String("snapshot-dir", filepath.Join("data", "snapshots"), "directory where rejected cache-snapshot imports are quarantined (empty disables)")
	traceSample := fs.Float64("trace-sample", 0.1, "fraction of requests traced into /debug/traces (1 = all, 0 = default, negative disables)")
	traceBuffer := fs.Int("trace-buffer", 256, "completed traces retained for /debug/traces")
	debugAddr := fs.String("debug-addr", "", "optional pprof/debug listen address (empty disables; keep it loopback-only, e.g. 127.0.0.1:6060)")
	join := fs.String("join", "", "comma-separated seed URLs of fleet members to gossip with (empty = single-node, no membership)")
	advertise := fs.String("advertise", "", "base URL peers reach this daemon at (required with -join, e.g. http://10.0.0.5:8080)")
	gossipInterval := fs.Duration("gossip-interval", time.Second, "membership probe cadence")
	replicaDir := fs.String("replica-dir", filepath.Join("data", "replicas"), "directory for sweep checkpoints replicated from peers (empty disables replication)")
	replicationRF := fs.Int("replication-rf", 2, "total owners per sweep checkpoint, this daemon included (f+1: survive rf-1 crashes)")
	antiEntropyEvery := fs.Duration("anti-entropy-interval", 30*time.Second, "cadence of replica digest comparison and repair (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var seeds []string
	if *join != "" {
		if *advertise == "" {
			return errors.New("-join requires -advertise (the URL peers reach this daemon at)")
		}
		// The first node of a fleet bootstraps by joining via its own
		// URL; drop self from the seed list rather than probing it.
		for _, raw := range strings.Split(*join, ",") {
			if raw = strings.TrimSpace(raw); raw != "" && raw != *advertise {
				seeds = append(seeds, raw)
			}
		}
		if err := cluster.ValidateBackends(append([]string{*advertise}, seeds...)); err != nil {
			return fmt.Errorf("membership seed list: %w", err)
		}
	}

	var handler slog.Handler
	level := slog.LevelInfo
	if *quiet {
		level = slog.LevelError
	}
	opts := &slog.HandlerOptions{Level: level}
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, opts)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, opts)
	default:
		return fmt.Errorf("unknown log format %q (want text or json)", *logFormat)
	}
	logger := slog.New(handler)

	requestTimeout := *timeout
	if requestTimeout == 0 {
		requestTimeout = -1 // Config treats 0 as "default"; negative disables.
	}
	// One tracer shared by the request path and the sweep engine, so
	// /debug/traces interleaves both.
	tracer := telemetry.New(telemetry.Config{
		SampleRate: *traceSample,
		Capacity:   *traceBuffer,
	})
	// One journal shared by the service, sweep engine, membership and
	// replicator, so /debug/events is the process-wide transition log.
	jrnl := journal.New(0)
	// Replica store and replicator come first: the sweep manager's
	// checkpoint hook streams into them.
	var store *sweep.ReplicaStore
	var replicator *cluster.Replicator
	var err error
	if *replicaDir != "" {
		if err := os.MkdirAll(*replicaDir, 0o755); err != nil {
			return fmt.Errorf("replica directory: %w", err)
		}
		store = sweep.NewReplicaStore(*replicaDir, logger)
	}
	if *join != "" && store != nil {
		homeDir := *sweepDir
		replicator, err = cluster.NewReplicator(cluster.ReplicatorConfig{
			Self:    *advertise,
			RF:      *replicationRF,
			Logger:  logger,
			Tracer:  tracer,
			Journal: jrnl,
			LocalDigest: func() map[string]sweep.CheckpointInfo {
				out := sweep.ScanCheckpoints(homeDir)
				for id, info := range store.Digest() {
					if held, ok := out[id]; !ok || info.Newer(held) {
						out[id] = info
					}
				}
				return out
			},
			LoadLocal: func(id string) (*sweep.Checkpoint, error) {
				if cp, err := sweep.LoadCheckpoint(homeDir, id); err == nil && cp != nil {
					return cp, nil
				}
				return store.Get(id)
			},
			Apply: store.Put,
		})
		if err != nil {
			return fmt.Errorf("replicator: %w", err)
		}
	}
	sweepCfg := sweep.Config{
		Dir:           *sweepDir,
		Workers:       *sweepWorkers,
		MaxActiveJobs: *sweepJobs,
		Logger:        logger,
		Tracer:        tracer,
		Journal:       jrnl,
	}
	if store != nil {
		sweepCfg.ReplicaDir = store.Dir()
	}
	if replicator != nil {
		sweepCfg.OnCheckpoint = func(cp sweep.Checkpoint) {
			replicator.Replicate(context.Background(), cp)
		}
	}
	sweeps := sweep.NewManager(sweepCfg)
	// Fail fast on an unwritable sweep directory instead of failing the
	// first submitted job.
	if err := os.MkdirAll(*sweepDir, 0o755); err != nil {
		return fmt.Errorf("sweep directory: %w", err)
	}
	svc := service.New(service.Config{
		CacheSize:      *cacheSize,
		BatchWorkers:   *workers,
		MaxBatch:       *maxBatch,
		RequestTimeout: requestTimeout,
		Logger:         logger,
		Tracer:         tracer,
		Journal:        jrnl,
		Sweeps:         sweeps,
		SnapshotDir:    *snapshotDir,
		Replicas:       store,
	})

	// With -join, gossip membership keeps the fleet view; membership
	// changes retarget the replicator, and a periodic anti-entropy pass
	// repairs replica divergence after partitions.
	var node *membership.Node
	var aeStop chan struct{}
	httpHandler := svc.Handler()
	if *join != "" {
		selfURL, _ := url.Parse(*advertise)
		node, err = membership.NewNode(membership.Config{
			Self:      membership.Member{Addr: selfURL.Host, URL: *advertise, Role: membership.RoleShard},
			Seeds:     seeds,
			Transport: membership.NewHTTPTransport(&http.Client{Timeout: 2 * time.Second}),
			Interval:  *gossipInterval,
			Logger:    logger,
			Journal:   jrnl,
			OnChange: func(v membership.View) {
				if replicator != nil {
					replicator.SetMembers(v.ShardURLs())
				}
				logger.Info("membership changed", "alive_shards", len(v.AliveShards()), "version", v.Version)
			},
		})
		if err != nil {
			return fmt.Errorf("membership: %w", err)
		}
		mux := http.NewServeMux()
		mux.Handle("POST "+membership.GossipPath, membership.Handler(node))
		mux.Handle("/", httpHandler)
		httpHandler = mux
		node.Start()
		defer node.Close()
		if replicator != nil && *antiEntropyEvery > 0 {
			aeStop = make(chan struct{})
			go func() {
				ticker := time.NewTicker(*antiEntropyEvery)
				defer ticker.Stop()
				for {
					select {
					case <-aeStop:
						return
					case <-ticker.C:
						replicator.AntiEntropy(context.Background())
					}
				}
			}()
			defer close(aeStop)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "linesearchd: listening on %s\n", ln.Addr())
	logger.Info("serving", "addr", ln.Addr().String(), "cache", *cacheSize, "max_batch", *maxBatch)

	srv := &http.Server{
		Handler:           httpHandler,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	if requestTimeout > 0 {
		// A slow-reading or slow-writing client must not hold a
		// connection much past the request budget: give the full body
		// read and the response write the budget plus slack, so the
		// in-handler timeout (which produces the clean 503 body) always
		// fires first.
		srv.ReadTimeout = requestTimeout + 5*time.Second
		srv.WriteTimeout = requestTimeout + 5*time.Second
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	// The debug surface (pprof, traces) binds separately and only on
	// request: profiling handlers can stall the process, so they never
	// share the serving port and are off by default.
	var debugSrv *http.Server
	if *debugAddr != "" {
		debugLn, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			srv.Close()
			return fmt.Errorf("debug listener: %w", err)
		}
		fmt.Fprintf(out, "linesearchd: debug listening on %s\n", debugLn.Addr())
		logger.Warn("debug/pprof surface enabled; do not expose it publicly",
			"addr", debugLn.Addr().String())
		debugSrv = &http.Server{
			Handler:           svc.DebugHandler(),
			ReadHeaderTimeout: 5 * time.Second,
			IdleTimeout:       2 * time.Minute,
		}
		// Debug-listener failures (beyond clean shutdown) are logged, not
		// fatal: losing pprof must not take the serving path down.
		go func() {
			if err := debugSrv.Serve(debugLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug server", "err", err)
			}
		}()
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	logger.Info("shutting down", "grace", shutdownGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if debugSrv != nil {
		if err := debugSrv.Shutdown(shutdownCtx); err != nil {
			logger.Error("debug shutdown", "err", err)
		}
	}
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	// Checkpoint and stop background sweeps after the listener closes;
	// resubmitting their specs on the next start resumes them.
	svc.Close()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(out, "linesearchd: shut down cleanly")
	return nil
}
