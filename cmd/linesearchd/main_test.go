package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"linesearch"
)

// lineWatcher is an io.Writer that signals once the "listening on"
// line arrives, so the test knows the ephemeral port is bound.
type lineWatcher struct {
	mu    sync.Mutex
	buf   strings.Builder
	ready chan struct{}
	once  sync.Once
}

func newLineWatcher() *lineWatcher { return &lineWatcher{ready: make(chan struct{})} }

func (w *lineWatcher) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	if strings.Contains(w.buf.String(), "listening on ") {
		w.once.Do(func() { close(w.ready) })
	}
	return len(p), nil
}

func (w *lineWatcher) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// addr extracts the bound address from the "listening on" line.
func (w *lineWatcher) addr(t *testing.T) string {
	t.Helper()
	for _, line := range strings.Split(w.String(), "\n") {
		if i := strings.Index(line, "listening on "); i >= 0 {
			return strings.TrimSpace(line[i+len("listening on "):])
		}
	}
	t.Fatal("no listening line in output:\n" + w.String())
	return ""
}

// TestServerEndToEnd is the ISSUE acceptance check: the daemon binds an
// ephemeral port, serves /v1/plan?n=3&f=1 with the paper's CR for
// A(3,1), /metrics reports cache hits after repeated identical
// queries, and cancelling the context (the same path SIGINT drives via
// signal.NotifyContext) shuts it down cleanly.
func TestServerEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	out := newLineWatcher()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-quiet"}, out)
	}()

	select {
	case <-out.ready:
	case err := <-done:
		t.Fatalf("server exited before binding: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never reported its address")
	}
	base := "http://" + out.addr(t)
	client := &http.Client{Timeout: 5 * time.Second}

	getJSON := func(path string) map[string]any {
		t.Helper()
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
		return m
	}

	// The paper's A(3,1) proportional schedule: CR must match the
	// closed form (~5.2331).
	wantCR, err := linesearch.CompetitiveRatio(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // repeat the identical query to generate cache hits
		plan := getJSON("/v1/plan?n=3&f=1")
		cr, ok := plan["competitive_ratio"].(float64)
		if !ok {
			t.Fatalf("plan response missing competitive_ratio: %v", plan)
		}
		if math.Abs(cr-wantCR) > 1e-9 {
			t.Fatalf("CR = %v, want %v", cr, wantCR)
		}
	}
	if math.Abs(wantCR-5.2331) > 1e-3 {
		t.Fatalf("sanity: CompetitiveRatio(3,1) = %v, expected ~5.2331", wantCR)
	}

	// Healthz responds.
	if h := getJSON("/healthz"); h["status"] != "ok" {
		t.Fatalf("healthz = %v", h)
	}

	// Metrics show the repeated query hit the cache.
	metrics := getJSON("/metrics")
	cache, ok := metrics["cache"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing cache section: %v", metrics)
	}
	if hits, _ := cache["hits"].(float64); hits < 1 {
		t.Fatalf("cache hits = %v, want > 0 after repeated identical queries", cache["hits"])
	}
	endpoints, ok := metrics["endpoints"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing endpoints section: %v", metrics)
	}
	planEp, ok := endpoints["/v1/plan"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing /v1/plan endpoint: %v", endpoints)
	}
	if reqs, _ := planEp["requests"].(float64); reqs < 3 {
		t.Fatalf("plan endpoint requests = %v, want >= 3", planEp["requests"])
	}

	// Graceful shutdown: cancelling the context is exactly what
	// signal.NotifyContext does on Ctrl-C.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
	if !strings.Contains(out.String(), "shut down cleanly") {
		t.Errorf("missing clean-shutdown message in output:\n%s", out.String())
	}

	// The listener is actually gone.
	if _, err := client.Get(base + "/healthz"); err == nil {
		t.Error("server still accepting connections after shutdown")
	}
}

// TestDebugListener boots the daemon with the opt-in debug listener:
// pprof and /debug/traces serve on the second port, never on the main
// one, and /metrics answers a Prometheus scrape in the text format.
func TestDebugListener(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := newLineWatcher()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0",
			"-trace-sample", "1", "-quiet"}, out)
	}()
	select {
	case <-out.ready:
	case err := <-done:
		t.Fatalf("server exited before binding: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never reported its address")
	}

	// The debug line can land just after the main one; wait for it.
	var mainAddr, debugAddr string
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, line := range strings.Split(out.String(), "\n") {
			if i := strings.Index(line, "debug listening on "); i >= 0 {
				debugAddr = strings.TrimSpace(line[i+len("debug listening on "):])
			} else if i := strings.Index(line, "listening on "); i >= 0 {
				mainAddr = strings.TrimSpace(line[i+len("listening on "):])
			}
		}
		if debugAddr != "" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if mainAddr == "" || debugAddr == "" {
		t.Fatalf("addresses not reported (main %q, debug %q):\n%s", mainAddr, debugAddr, out.String())
	}
	client := &http.Client{Timeout: 5 * time.Second}

	// Generate one traced request, then read it back via the debug port.
	resp, err := client.Get("http://" + mainAddr + "/v1/plan?n=3&f=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = client.Get("http://" + debugAddr + "/debug/traces?sort=slowest")
	if err != nil {
		t.Fatal(err)
	}
	var traces struct {
		Traces []struct {
			Name string `json:"name"`
		} `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	found := false
	for _, tr := range traces.Traces {
		found = found || tr.Name == "/v1/plan"
	}
	if !found {
		t.Errorf("debug port reports no /v1/plan trace: %+v", traces)
	}

	// pprof lives on the debug port only.
	resp, err = client.Get("http://" + debugAddr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("debug pprof status %d", resp.StatusCode)
	}
	resp, err = client.Get("http://" + mainAddr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("pprof must not serve on the main port")
	}

	// A Prometheus scrape of the main port gets the text exposition.
	req, _ := http.NewRequest("GET", "http://"+mainAddr+"/metrics", nil)
	req.Header.Set("Accept", "text/plain;version=0.0.4")
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := new(strings.Builder)
	if _, err := io.Copy(body, resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("scrape Content-Type = %q", ct)
	}
	if !strings.Contains(body.String(), "linesearchd_http_requests_total") {
		t.Errorf("exposition missing request counter:\n%.500s", body.String())
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
	if _, err := client.Get("http://" + debugAddr + "/healthz"); err == nil {
		t.Error("debug listener still accepting connections after shutdown")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-log", "yaml"},               // unknown log format
		{"-addr", "definitely:not:ok"}, // unparseable listen address
		{"-addr", "127.0.0.1:0", "-debug-addr", "definitely:not:ok"},
		{"-no-such-flag"},
	}
	for _, args := range cases {
		err := run(context.Background(), args, &strings.Builder{})
		if err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunTimeoutFlagDisables(t *testing.T) {
	// -timeout 0 must disable the per-request timeout rather than make
	// every request time out instantly.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := newLineWatcher()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-timeout", "0", "-quiet"}, out)
	}()
	select {
	case <-out.ready:
	case err := <-done:
		t.Fatalf("server exited before binding: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never reported its address")
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/v1/plan?n=4&f=1", out.addr(t)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d with timeout disabled", resp.StatusCode)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
