// Command linesweep runs a parameter sweep locally: the same
// checkpointed, resumable job engine linesearchd serves over HTTP, but
// driven to completion in the foreground. The grid comes either from a
// JSON spec file (-spec, the exact POST /v1/sweeps payload) or from
// flags. Interrupting a run (SIGINT/SIGTERM) checkpoints it; rerunning
// the identical spec resumes from the checkpoint instead of
// recomputing.
//
// Usage:
//
//	linesweep -n 2,3,4,5 -f 1,2 [-strategies auto,doubling] [-betas 2.5]
//	          [-xmin 1] [-xmax 100] [-grid 64] [-name sweep]
//	          [-dir data/sweeps] [-workers 0] [-checkpoint-every 32]
//	          [-progress 1s] [-quiet]
//	linesweep -spec sweep.json [-dir data/sweeps] ...
//
// Results land as <dir>/<job-id>.csv and .json (see data/README.md for
// the column schema); progress and a summary print to stdout.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"linesearch/internal/sweep"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "linesweep:", err)
		os.Exit(1)
	}
}

// run parses flags, submits the sweep to a local manager, and drives it
// to a terminal state, checkpointing on interruption.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("linesweep", flag.ContinueOnError)
	specFile := fs.String("spec", "", "JSON sweep spec file (same shape as POST /v1/sweeps); overrides the grid flags")
	nList := fs.String("n", "", "comma-separated robot counts, e.g. 2,3,4,5")
	fList := fs.String("f", "", "comma-separated fault budgets, e.g. 1,2,3")
	strategies := fs.String("strategies", "", "comma-separated strategy names (auto, proportional, twogroup, doubling, cone:<beta>, uniform:<beta>); default auto")
	betas := fs.String("betas", "", "comma-separated cone slopes, each adding a cone:<beta> strategy")
	pAxis := fs.String("p", "", "comma-separated per-visit miss probabilities for the expected-time axis, e.g. 0.25,0.5")
	speedsAxis := fs.String("speeds", "", "semicolon-separated per-robot speed vectors, e.g. 1,1,2;2 (a single speed broadcasts)")
	xmin := fs.Float64("xmin", 0, "smallest target distance (0 = default 1)")
	xmax := fs.Float64("xmax", 0, "largest target distance (0 = default 100*xmin)")
	grid := fs.Int("grid", 0, "safety-grid points per half line (0 = default 64)")
	name := fs.String("name", "", "dataset name (default \"sweep\")")
	dir := fs.String("dir", filepath.Join("data", "sweeps"), "directory for checkpoints and result datasets")
	workers := fs.Int("workers", 0, "cell workers (0 = GOMAXPROCS)")
	checkpointEvery := fs.Int("checkpoint-every", 0, "cells between checkpoint flushes (0 = default 32)")
	progress := fs.Duration("progress", time.Second, "progress print interval")
	quiet := fs.Bool("quiet", false, "suppress progress lines (summary still prints)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	spec, err := buildSpec(*specFile, *nList, *fList, *strategies, *betas, *pAxis, *speedsAxis, *xmin, *xmax, *grid, *name)
	if err != nil {
		return err
	}

	logLevel := slog.LevelInfo
	if *quiet {
		logLevel = slog.LevelError
	}
	m := sweep.NewManager(sweep.Config{
		Dir:             *dir,
		Workers:         *workers,
		CheckpointEvery: *checkpointEvery,
		Logger:          slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: logLevel})),
	})
	defer m.Close()

	job, err := m.Submit(spec)
	if err != nil {
		return err
	}
	st := job.Status()
	fmt.Fprintf(out, "sweep %s: %d cells (%d resumed from checkpoint), datasets under %s\n",
		st.ID, st.TotalCells, st.ResumedCells, *dir)

	ticker := time.NewTicker(*progress)
	defer ticker.Stop()
	interrupted := false
	for done := false; !done; {
		select {
		case <-job.Done():
			done = true
		case <-ctx.Done():
			if !interrupted {
				interrupted = true
				fmt.Fprintln(out, "interrupted: checkpointing...")
				job.Cancel()
			}
		case <-ticker.C:
			if !*quiet {
				printProgress(out, job.Status())
			}
		}
	}
	return summarize(out, job)
}

// buildSpec assembles the sweep spec from a file or from flags.
func buildSpec(specFile, nList, fList, strategies, betas, pAxis, speedsAxis string, xmin, xmax float64, grid int, name string) (sweep.Spec, error) {
	var spec sweep.Spec
	if specFile != "" {
		if nList != "" || fList != "" || strategies != "" || betas != "" || pAxis != "" || speedsAxis != "" {
			return spec, fmt.Errorf("-spec and grid flags (-n, -f, -strategies, -betas, -p, -speeds) are mutually exclusive")
		}
		blob, err := os.ReadFile(specFile)
		if err != nil {
			return spec, err
		}
		if err := json.Unmarshal(blob, &spec); err != nil {
			return spec, fmt.Errorf("decode spec %s: %w", specFile, err)
		}
		return spec, nil
	}
	var err error
	if spec.N, err = sweep.ParseInts(nList); err != nil {
		return spec, err
	}
	if spec.F, err = sweep.ParseInts(fList); err != nil {
		return spec, err
	}
	if len(spec.N) == 0 || len(spec.F) == 0 {
		return spec, fmt.Errorf("need -spec, or both -n and -f")
	}
	if strategies != "" {
		for _, s := range strings.Split(strategies, ",") {
			if s = strings.TrimSpace(s); s != "" {
				spec.Strategies = append(spec.Strategies, s)
			}
		}
	}
	if spec.Betas, err = sweep.ParseFloats(betas); err != nil {
		return spec, err
	}
	if spec.P, err = sweep.ParseFloats(pAxis); err != nil {
		return spec, err
	}
	for _, vec := range strings.Split(speedsAxis, ";") {
		if strings.TrimSpace(vec) == "" {
			continue
		}
		v, err := sweep.ParseFloats(vec)
		if err != nil {
			return spec, err
		}
		spec.Speeds = append(spec.Speeds, v)
	}
	spec.XMin = xmin
	spec.XMax = xmax
	spec.GridPoints = grid
	spec.Name = name
	return spec, nil
}

// printProgress renders one status line.
func printProgress(out io.Writer, st sweep.Status) {
	line := fmt.Sprintf("  %s: %d/%d cells", st.State, st.DoneCells, st.TotalCells)
	if st.CellErrors > 0 {
		line += fmt.Sprintf(", %d cell errors", st.CellErrors)
	}
	if st.ETASeconds != nil {
		line += fmt.Sprintf(", ETA %.1fs", *st.ETASeconds)
	}
	fmt.Fprintln(out, line)
}

// summarize prints the terminal report and maps the job state to the
// process outcome.
func summarize(out io.Writer, job *sweep.Job) error {
	st := job.Status()
	fmt.Fprintf(out, "sweep %s %s: %d/%d cells in %.2fs (%d resumed, %d cell errors)\n",
		st.ID, st.State, st.DoneCells, st.TotalCells, st.ElapsedSeconds,
		st.ResumedCells, st.CellErrors)
	switch st.State {
	case sweep.StateDone:
		worst, checked := 0.0, 0
		for _, c := range job.CompletedCells() {
			if c.AbsError != nil {
				checked++
				if *c.AbsError > worst {
					worst = *c.AbsError
				}
			}
		}
		if checked > 0 {
			fmt.Fprintf(out, "closed-form cross-check: %d cells, worst |empirical - analytic| = %.3g\n", checked, worst)
		}
		for _, f := range st.Files {
			fmt.Fprintf(out, "wrote %s\n", f)
		}
		return nil
	case sweep.StateCancelled:
		fmt.Fprintln(out, "checkpoint saved; rerun the same spec to resume")
		return nil
	default:
		return fmt.Errorf("sweep %s: %s", st.State, st.Error)
	}
}
