package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFlagsGrid(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-n", "2,3,4", "-f", "1,2", "-xmax", "30", "-grid", "8",
		"-dir", dir, "-quiet",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"6 cells", "done: 6/6 cells", "closed-form cross-check", "wrote "} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	matches, err := filepath.Glob(filepath.Join(dir, "sw-*.csv"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("csv files = %v, %v", matches, err)
	}
	blob, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(blob), "n,f,strategy_id,beta,empirical_cr,analytic_cr,abs_error,arg_x,candidates") {
		t.Errorf("csv header:\n%s", blob[:min(len(blob), 120)])
	}
}

func TestRunSpecFileAndResume(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	spec := `{"name": "cli", "n": [3, 5], "f": [1, 2], "xmax": 30, "grid_points": 8}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-spec", specPath, "-dir", dir, "-quiet"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "(0 resumed from checkpoint)") {
		t.Errorf("first run claims resume:\n%s", out.String())
	}

	// The identical spec resumes the finished checkpoint: every cell is
	// replayed, none recomputed.
	out.Reset()
	if err := run(context.Background(), []string{"-spec", specPath, "-dir", dir, "-quiet"}, &out); err != nil {
		t.Fatalf("rerun: %v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "(4 resumed from checkpoint)") || !strings.Contains(s, "4 resumed") {
		t.Errorf("rerun did not resume:\n%s", s)
	}
}

func TestRunFlagValidation(t *testing.T) {
	cases := [][]string{
		{},                       // no grid at all
		{"-n", "3"},              // missing -f
		{"-n", "3,x", "-f", "1"}, // bad integer
		{"-n", "3", "-f", "1", "-betas", "oops"},
		{"-spec", "nope.json"},         // missing file
		{"-spec", "s.json", "-n", "3"}, // mutually exclusive
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(context.Background(), append(args, "-quiet"), &out); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}

func TestRunInterruptCheckpoints(t *testing.T) {
	// A pre-cancelled context behaves like an immediate SIGINT: the job
	// is cancelled, checkpointed, and reported resumable.
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out bytes.Buffer
	err := run(ctx, []string{
		"-n", "3,5,7,9,11", "-f", "1,2,3", "-xmax", "50", "-grid", "8",
		"-dir", dir, "-quiet",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	s := out.String()
	// The race between cancellation and completion is real: accept either
	// a cancelled (resumable) or a done run, but require the checkpoint.
	if !strings.Contains(s, "rerun the same spec to resume") && !strings.Contains(s, "done:") {
		t.Errorf("unexpected outcome:\n%s", s)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "sw-*.checkpoint.json"))
	if len(matches) != 1 {
		t.Errorf("checkpoint files = %v", matches)
	}
}
