package main

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"linesearch/internal/service"
)

// lineWatcher signals once the "listening on" line arrives, so the
// test can discover the ephemeral port.
type lineWatcher struct {
	mu    sync.Mutex
	buf   strings.Builder
	ready chan struct{}
	once  sync.Once
}

func newLineWatcher() *lineWatcher { return &lineWatcher{ready: make(chan struct{})} }

func (w *lineWatcher) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	if strings.Contains(w.buf.String(), "listening on ") {
		w.once.Do(func() { close(w.ready) })
	}
	return len(p), nil
}

func (w *lineWatcher) addr(t *testing.T) string {
	t.Helper()
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, line := range strings.Split(w.buf.String(), "\n") {
		if i := strings.Index(line, "listening on "); i >= 0 {
			return strings.TrimSpace(line[i+len("listening on "):])
		}
	}
	t.Fatal("no listening line in output:\n" + w.buf.String())
	return ""
}

func TestSplitBackends(t *testing.T) {
	got := splitBackends(" http://a:1, http://b:2 ,,http://c:3,")
	want := []string{"http://a:1", "http://b:2", "http://c:3"}
	if len(got) != len(want) {
		t.Fatalf("splitBackends = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitBackends[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestRunRequiresBackends(t *testing.T) {
	err := run(context.Background(), []string{"-addr", "127.0.0.1:0"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-backends") {
		t.Fatalf("run without -backends: %v", err)
	}
}

// TestRouterEndToEnd binds the router on an ephemeral port over two
// real backends, proxies a plan query, reads the router's health and
// metrics surfaces, and shuts down cleanly on context cancel.
func TestRouterEndToEnd(t *testing.T) {
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	var urls []string
	for i := 0; i < 2; i++ {
		svc := service.New(service.Config{Logger: quiet})
		srv := httptest.NewServer(svc.Handler())
		t.Cleanup(func() { srv.Close(); svc.Close() })
		urls = append(urls, srv.URL)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := newLineWatcher()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-backends", strings.Join(urls, ","),
			"-health-interval", "-1s",
			"-quiet",
		}, out)
	}()
	select {
	case <-out.ready:
	case err := <-done:
		t.Fatalf("router exited before binding: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("router never reported its address")
	}
	base := "http://" + out.addr(t)
	client := &http.Client{Timeout: 5 * time.Second}

	resp, err := client.Get(base + "/v1/plan?n=3&f=1")
	if err != nil {
		t.Fatal(err)
	}
	var plan map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&plan); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || plan["competitive_ratio"] == nil {
		t.Fatalf("proxied plan: status %d, body %v", resp.StatusCode, plan)
	}

	resp, err = client.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodGet, base+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "linerouter_proxied_requests_total") {
		t.Fatalf("prometheus exposition missing router families:\n%.400s", body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("router did not shut down")
	}
}
