// Command linerouter fronts a fleet of linesearchd backends with a
// consistent-hash router: every /v1/* request is placed on the ring by
// its plan key, proxied with health-aware retry that honors the
// backends' 429/503 + Retry-After admission contract, and topology
// changes warm-transfer hot plan-cache entries so a reshaped fleet
// serves its keys without recompiling them.
//
// Usage:
//
//	linerouter -backends http://127.0.0.1:8081,http://127.0.0.1:8082 \
//	           [-addr :8090] [-attempts 3] [-vnodes 160] \
//	           [-health-interval 2s] [-quarantine-votes 3] \
//	           [-slow-threshold 0] [-warm-keys 64] [-log text|json] [-quiet] \
//	           [-trace-sample 1] [-trace-buffer 256] [-debug-addr ""] \
//	           [-slo-objective 0.99] [-slo-latency-budget 250ms] \
//	           [-join http://peer:8080,...] [-advertise http://host:8090] \
//	           [-gossip-interval 1s]
//
// Endpoints:
//
//	/v1/*                    proxied to the owning backend (ring failover on retryable errors)
//	GET /healthz             200 while at least one backend is routable; includes SLO burn rates
//	GET /metrics             router + per-backend stats; Prometheus text under Accept: text/plain
//	PUT /admin/topology      {"backends": [...]} — replace the fleet and warm-transfer hot keys
//	GET /debug/traces        the router's own sampled traces
//	GET /debug/fleet-traces  cross-process stitched traces (scrapes every backend's ring)
//	GET /debug/events        structured event journal (breaker, quarantine, topology)
//	POST /gossip             membership exchange (only with -join)
//
// With -debug-addr set, a second listener (keep it loopback-only)
// additionally serves net/http/pprof under /debug/pprof/ plus the same
// debug, metrics and health endpoints — parity with linesearchd.
//
// With -join, the router participates in the fleet's gossip as an
// observer: it holds no keys, but every membership change rebuilds its
// ring automatically — no PUT /admin/topology needed, and any number
// of routers converge to the same ring without a coordination store.
// While gossip reports zero alive shards (a full partition), the
// router keeps its last topology: stale routing beats no routing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"linesearch/internal/cluster"
	"linesearch/internal/membership"
	"linesearch/internal/telemetry"
	"linesearch/internal/telemetry/journal"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "linerouter:", err)
		os.Exit(1)
	}
}

// shutdownGrace is how long in-flight proxied requests get to drain
// after a shutdown signal.
const shutdownGrace = 10 * time.Second

// run parses flags, binds the listener, and proxies until ctx is
// cancelled. Like linesearchd it prints one "listening on <addr>" line
// so callers using ":0" can discover the port.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("linerouter", flag.ContinueOnError)
	addr := fs.String("addr", ":8090", "listen address (host:port; port 0 picks an ephemeral port)")
	backends := fs.String("backends", "", "comma-separated linesearchd base URLs (required)")
	attempts := fs.Int("attempts", 3, "attempts per retryable request, first included")
	vnodes := fs.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per backend on the hash ring")
	healthInterval := fs.Duration("health-interval", 2*time.Second, "backend health probe cadence (negative disables)")
	quarantineVotes := fs.Int("quarantine-votes", 3, "consecutive failed health votes that quarantine a backend")
	slowThreshold := fs.Duration("slow-threshold", 0, "mean proxied latency per probe window that draws a failed vote (0 disables)")
	warmKeys := fs.Int("warm-keys", 64, "hot plan-cache entries transferred per donor on topology change (negative disables)")
	breakerCooldown := fs.Duration("breaker-cooldown", 2*time.Second, "circuit-breaker open duration after consecutive failures")
	logFormat := fs.String("log", "text", "log format: text or json")
	quiet := fs.Bool("quiet", false, "suppress info logs (errors still logged)")
	traceSample := fs.Float64("trace-sample", 1, "fraction of proxied requests traced into /debug/traces (1 = all, 0 = default, negative disables)")
	traceBuffer := fs.Int("trace-buffer", 256, "completed traces retained for /debug/traces")
	debugAddr := fs.String("debug-addr", "", "optional pprof/debug listen address (empty disables; keep it loopback-only, e.g. 127.0.0.1:6061)")
	sloObjective := fs.Float64("slo-objective", 0.99, "fraction of routed requests that must be good (neither 5xx nor over the latency budget)")
	sloLatencyBudget := fs.Duration("slo-latency-budget", 250*time.Millisecond, "per-request latency budget the SLO slow-rate burn is measured against")
	join := fs.String("join", "", "comma-separated seed URLs of fleet members to gossip with (empty = static -backends topology)")
	advertise := fs.String("advertise", "", "base URL fleet members reach this router at (required with -join)")
	gossipInterval := fs.Duration("gossip-interval", time.Second, "membership probe cadence")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var seeds []string
	if *join != "" {
		if *advertise == "" {
			return errors.New("-join requires -advertise (the URL fleet members reach this router at)")
		}
		// Tolerate self in -join (the bootstrap idiom is joining via
		// your own URL); the router only probes the other seeds.
		all := splitBackends(*join)
		for _, s := range all {
			if s != *advertise {
				seeds = append(seeds, s)
			}
		}
		if err := cluster.ValidateBackends(append([]string{*advertise}, seeds...)); err != nil {
			return fmt.Errorf("membership seed list: %w", err)
		}
	}
	if *backends == "" && len(seeds) == 0 {
		return errors.New("-backends is required (comma-separated linesearchd URLs), or use -join")
	}

	var handler slog.Handler
	level := slog.LevelInfo
	if *quiet {
		level = slog.LevelError
	}
	opts := &slog.HandlerOptions{Level: level}
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, opts)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, opts)
	default:
		return fmt.Errorf("unknown log format %q (want text or json)", *logFormat)
	}
	logger := slog.New(handler)

	// With -join but no -backends, the gossip seeds double as the
	// initial topology; the first membership exchange replaces it.
	initial := splitBackends(*backends)
	if len(initial) == 0 {
		initial = seeds
	}
	tracer := telemetry.New(telemetry.Config{
		SampleRate: *traceSample,
		Capacity:   *traceBuffer,
	})
	jrnl := journal.New(0)
	router, err := cluster.New(cluster.Config{
		Backends:         initial,
		VNodes:           *vnodes,
		Attempts:         *attempts,
		HealthInterval:   *healthInterval,
		QuarantineVotes:  *quarantineVotes,
		SlowThreshold:    *slowThreshold,
		WarmKeys:         *warmKeys,
		BreakerCooldown:  *breakerCooldown,
		Logger:           logger,
		Tracer:           tracer,
		Journal:          jrnl,
		SLOObjective:     *sloObjective,
		SLOLatencyBudget: *sloLatencyBudget,
	})
	if err != nil {
		return err
	}
	defer router.Close()

	// As a gossip observer the router never owns keys, but it hears
	// every membership change and rebuilds its ring from the alive
	// shard set. An empty alive set keeps the previous topology.
	httpHandler := router.Handler()
	if len(seeds) > 0 {
		selfURL, _ := url.Parse(*advertise)
		node, nerr := membership.NewNode(membership.Config{
			Self:      membership.Member{Addr: selfURL.Host, URL: *advertise, Role: membership.RoleObserver},
			Seeds:     seeds,
			Transport: membership.NewHTTPTransport(&http.Client{Timeout: 2 * time.Second}),
			Interval:  *gossipInterval,
			Logger:    logger,
			Journal:   jrnl,
			OnChange: func(v membership.View) {
				shards := v.ShardURLs()
				if len(shards) == 0 {
					logger.Warn("membership reports no alive shards; keeping last topology")
					return
				}
				if err := router.SetTopology(shards); err != nil {
					logger.Error("membership topology rejected", "err", err)
					return
				}
				logger.Info("topology from gossip", "shards", len(shards), "version", v.Version)
			},
		})
		if nerr != nil {
			return fmt.Errorf("membership: %w", nerr)
		}
		mux := http.NewServeMux()
		mux.Handle("POST "+membership.GossipPath, membership.Handler(node))
		mux.Handle("/", httpHandler)
		httpHandler = mux
		node.Start()
		defer node.Close()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "linerouter: listening on %s\n", ln.Addr())
	logger.Info("routing", "addr", ln.Addr().String(), "backends", router.Backends())

	srv := &http.Server{
		Handler:           httpHandler,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	// The debug surface (pprof, traces, fleet-traces, events) binds
	// separately and only on request — parity with linesearchd's
	// -debug-addr: profiling handlers can stall the process, so they
	// never share the serving port and are off by default.
	var debugSrv *http.Server
	if *debugAddr != "" {
		debugLn, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			srv.Close()
			return fmt.Errorf("debug listener: %w", err)
		}
		fmt.Fprintf(out, "linerouter: debug listening on %s\n", debugLn.Addr())
		logger.Warn("debug/pprof surface enabled; do not expose it publicly",
			"addr", debugLn.Addr().String())
		debugSrv = &http.Server{
			Handler:           router.DebugHandler(),
			ReadHeaderTimeout: 5 * time.Second,
			IdleTimeout:       2 * time.Minute,
		}
		// Debug-listener failures (beyond clean shutdown) are logged, not
		// fatal: losing pprof must not take the proxy down.
		go func() {
			if err := debugSrv.Serve(debugLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug server", "err", err)
			}
		}()
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	logger.Info("shutting down", "grace", shutdownGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if debugSrv != nil {
		if err := debugSrv.Shutdown(shutdownCtx); err != nil {
			logger.Error("debug shutdown", "err", err)
		}
	}
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(out, "linerouter: shut down cleanly")
	return nil
}

// splitBackends parses the -backends flag, tolerating spaces and a
// trailing comma.
func splitBackends(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
