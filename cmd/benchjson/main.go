// Command benchjson turns `go test -bench -benchmem` output into a
// small machine-readable JSON report, and compares two such reports for
// allocation regressions.
//
// Convert (reads the benchmark log from stdin):
//
//	go test -bench . -benchmem ./internal/compiled | benchjson -o BENCH_pr3.json
//
// Compare (exits 1 when any benchmark's allocs/op grew by more than the
// allowed factor over the baseline):
//
//	benchjson -compare BENCH_baseline.json BENCH_pr3.json
//
// The report is deliberately timestamp-free and sorted by name so that
// reruns with identical allocation behaviour diff cleanly in git.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Runs        int64   `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the file format.
type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchLine matches one `go test -bench -benchmem` result, e.g.
//
//	BenchmarkCompiledBatch/100-8   17470   7239 ns/op   0 B/op   0 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	var (
		out     = flag.String("o", "", "write the JSON report to this file (default stdout)")
		compare = flag.Bool("compare", false, "compare two reports: benchjson -compare baseline.json new.json")
		factor  = flag.Float64("factor", 2, "allowed allocs/op growth factor in -compare mode")
	)
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare baseline.json new.json")
			os.Exit(2)
		}
		regressions, err := compareFiles(flag.Arg(0), flag.Arg(1), *factor)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		for _, r := range regressions {
			fmt.Println(r)
		}
		if len(regressions) > 0 {
			os.Exit(1)
		}
		fmt.Println("benchjson: no allocation regressions")
		return
	}

	report, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(2)
	}
	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
}

// Parse reads a `go test -bench -benchmem` log and returns the sorted
// report. Non-benchmark lines (headers, PASS, ok) are skipped.
func Parse(r io.Reader) (Report, error) {
	var rep Report
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		runs, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return rep, fmt.Errorf("bad run count in %q: %v", sc.Text(), err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return rep, fmt.Errorf("bad ns/op in %q: %v", sc.Text(), err)
		}
		b := Benchmark{Name: m[1], Runs: runs, NsPerOp: ns}
		if m[4] != "" {
			if b.BytesPerOp, err = strconv.ParseInt(m[4], 10, 64); err != nil {
				return rep, fmt.Errorf("bad B/op in %q: %v", sc.Text(), err)
			}
		}
		if m[5] != "" {
			if b.AllocsPerOp, err = strconv.ParseInt(m[5], 10, 64); err != nil {
				return rep, fmt.Errorf("bad allocs/op in %q: %v", sc.Text(), err)
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool {
		return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name
	})
	return rep, nil
}

// Compare returns one message per benchmark whose allocs/op in next
// exceeds factor times the baseline's (floored at 1 alloc/op, so a
// 0→1 step is not a failure). Benchmarks present in only one report
// are ignored: the baseline may predate newly added benchmarks.
func Compare(base, next Report, factor float64) []string {
	baseline := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}
	var regressions []string
	for _, n := range next.Benchmarks {
		old, ok := baseline[n.Name]
		if !ok {
			continue
		}
		limit := factor * float64(max(old.AllocsPerOp, 1))
		if float64(n.AllocsPerOp) > limit {
			regressions = append(regressions, fmt.Sprintf(
				"%s: allocs/op %d exceeds %.3gx baseline %d",
				n.Name, n.AllocsPerOp, factor, old.AllocsPerOp))
		}
	}
	return regressions
}

func compareFiles(basePath, nextPath string, factor float64) ([]string, error) {
	base, err := readReport(basePath)
	if err != nil {
		return nil, err
	}
	next, err := readReport(nextPath)
	if err != nil {
		return nil, err
	}
	return Compare(base, next, factor), nil
}

func readReport(path string) (Report, error) {
	var rep Report
	raw, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		return rep, fmt.Errorf("%s: %v", path, err)
	}
	return rep, nil
}
