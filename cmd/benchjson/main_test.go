package main

import (
	"strings"
	"testing"
)

const sampleLog = `goos: linux
goarch: amd64
pkg: linesearch/internal/compiled
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCompileCold       	   20349	      5350 ns/op	    4992 B/op	      73 allocs/op
BenchmarkCompiledBatch/10000         	     198	    639660 ns/op	       0 B/op	       0 allocs/op
BenchmarkSimBatch/10000              	      10	  11978215 ns/op	 1680000 B/op	   40000 allocs/op
BenchmarkSearchTimeHot     	 1836189	        70.80 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	linesearch/internal/compiled	1.638s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(rep.Benchmarks))
	}
	// Sorted by name, GOMAXPROCS suffix stripped.
	wantNames := []string{
		"BenchmarkCompileCold",
		"BenchmarkCompiledBatch/10000",
		"BenchmarkSearchTimeHot",
		"BenchmarkSimBatch/10000",
	}
	for i, want := range wantNames {
		if rep.Benchmarks[i].Name != want {
			t.Errorf("benchmarks[%d].Name = %q, want %q", i, rep.Benchmarks[i].Name, want)
		}
	}
	cold := rep.Benchmarks[0]
	if cold.Runs != 20349 || cold.NsPerOp != 5350 || cold.BytesPerOp != 4992 || cold.AllocsPerOp != 73 {
		t.Errorf("CompileCold = %+v", cold)
	}
	hot := rep.Benchmarks[2]
	if hot.NsPerOp != 70.80 || hot.AllocsPerOp != 0 {
		t.Errorf("SearchTimeHot = %+v", hot)
	}
}

func TestParseSkipsNoise(t *testing.T) {
	rep, err := Parse(strings.NewReader("PASS\nok  pkg 1s\nnot a benchmark\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Errorf("parsed %d benchmarks from noise", len(rep.Benchmarks))
	}
}

func TestCompare(t *testing.T) {
	base := Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", AllocsPerOp: 10},
		{Name: "BenchmarkZero", AllocsPerOp: 0},
		{Name: "BenchmarkGone", AllocsPerOp: 5},
	}}
	next := Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", AllocsPerOp: 20},    // exactly 2x: allowed
		{Name: "BenchmarkZero", AllocsPerOp: 2},  // 0 -> 2 with floor 1: allowed at 2x
		{Name: "BenchmarkNew", AllocsPerOp: 999}, // no baseline: ignored
	}}
	if regs := Compare(base, next, 2); len(regs) != 0 {
		t.Errorf("unexpected regressions: %v", regs)
	}

	next.Benchmarks[0].AllocsPerOp = 21 // just past 2x
	next.Benchmarks[1].AllocsPerOp = 3  // past the 0-alloc floor
	regs := Compare(base, next, 2)
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want 2", regs)
	}
	for _, want := range []string{"BenchmarkA", "BenchmarkZero"} {
		found := false
		for _, r := range regs {
			if strings.HasPrefix(r, want+":") {
				found = true
			}
		}
		if !found {
			t.Errorf("no regression reported for %s: %v", want, regs)
		}
	}
}
