// Command lowerbound solves the Theorem 2 equation
// (alpha-1)^n (alpha-3) = 2^(n+1) for a given number of robots and
// prints the adversarial target ladder that certifies the bound.
//
// Usage:
//
//	lowerbound -n 5 [-alpha 3.3]
//
// With -alpha, a weaker explicit bound is used instead of the root
// (useful for exploring the trade-off between alpha and ladder depth).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"linesearch/internal/adversary"
	"linesearch/internal/analysis"
	"linesearch/internal/table"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lowerbound:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lowerbound", flag.ContinueOnError)
	n := fs.Int("n", 5, "number of robots (the bound applies whenever n < 2f+2)")
	alphaFlag := fs.Float64("alpha", 0, "explicit alpha > 3 (default: the exact Theorem 2 root)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		ladder adversary.Ladder
		err    error
	)
	if *alphaFlag != 0 {
		ladder, err = adversary.NewLadderWithAlpha(*n, *alphaFlag)
	} else {
		ladder, err = adversary.NewLadder(*n)
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "Theorem 2 for n = %d robots (any f with n < 2f+2):\n", *n)
	fmt.Fprintf(out, "  alpha = %.9f satisfies (alpha-1)^%d (alpha-3) <= 2^%d\n", ladder.Alpha, *n, *n+1)
	fmt.Fprintf(out, "  every algorithm has competitive ratio >= alpha\n")
	if asym, aerr := analysis.Corollary2Bound(float64(*n)); aerr == nil {
		fmt.Fprintf(out, "  asymptotic form (Corollary 2): 3 + 2 ln n / n - 2 ln ln n / n = %.6f\n", asym)
	}
	fmt.Fprintln(out)

	tb := table.New("i", "ladder point x_i", "time budget alpha*x_i")
	for i, x := range ladder.Points {
		tb.AddRow(fmt.Sprintf("%d", i), fmt.Sprintf("%.6f", x), fmt.Sprintf("%.6f", ladder.Alpha*x))
	}
	fmt.Fprint(out, tb.Render())
	fmt.Fprintf(out, "\nadversary candidate targets: +-1 and +-x_i (%d placements)\n", 2+2*len(ladder.Points))
	return nil
}
