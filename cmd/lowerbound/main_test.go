package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunDefault(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{
		"Theorem 2 for n = 5",
		"alpha = 3.5703",
		"ladder point",
		"12 placements",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunExplicitN(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "3"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "alpha = 3.760555") {
		t.Errorf("n=3 root wrong:\n%s", out.String())
	}
}

func TestRunExplicitAlpha(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "4", "-alpha", "3.3"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "alpha = 3.3") {
		t.Errorf("explicit alpha not used:\n%s", out.String())
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	cases := [][]string{
		{"-n", "0"},
		{"-n", "4", "-alpha", "2.5"}, // alpha <= 3
		{"-n", "4", "-alpha", "9"},   // violates the Theorem 2 inequality
		{"-badflag"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
