package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunDefaultSearch(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "3", "-f", "1", "-target", "4"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{
		"strategy=proportional",
		"competitive ratio: 5.23307",
		"timeline:",
		"detect",
		"detected at t = 14.6667",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunQuietSuppressesTimeline(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "3", "-f", "1", "-target", "4", "-quiet"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if strings.Contains(out.String(), "timeline:") {
		t.Error("timeline printed despite -quiet")
	}
	if !strings.Contains(out.String(), "detected at") {
		t.Error("summary missing")
	}
}

func TestRunExplicitFaults(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "3", "-f", "1", "-target", "4", "-faulty", "1", "-quiet"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "faulty robots [1] (user supplied)") {
		t.Errorf("fault assignment not reported:\n%s", out.String())
	}
}

func TestRunExplicitStrategy(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "6", "-f", "2", "-target", "9", "-strategy", "twogroup", "-quiet"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "strategy=twogroup") || !strings.Contains(s, "competitive ratio: 1") {
		t.Errorf("two-group run wrong:\n%s", s)
	}
	if !strings.Contains(s, "detected at t = 9") {
		t.Errorf("two-group detection wrong:\n%s", s)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	cases := [][]string{
		{"-n", "3", "-f", "1", "-target", "0.5"},                 // below minimal distance
		{"-n", "3", "-f", "3", "-target", "4"},                   // hopeless pair
		{"-n", "3", "-f", "1", "-target", "4", "-faulty", "0,1"}, // budget exceeded
		{"-n", "3", "-f", "1", "-target", "4", "-faulty", "x"},   // unparsable
		{"-n", "3", "-f", "1", "-target", "4", "-faulty", "7"},   // out of range
		{"-n", "3", "-f", "1", "-strategy", "nope"},              // unknown strategy
		{"-bogusflag"}, // flag error
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunUndetectableTarget(t *testing.T) {
	// doubling with all-but-one faulty and the single visitor corrupted:
	// choose faulty = the only robots that visit. With doubling all
	// robots visit simultaneously; making robot 0 faulty of n=1 is
	// invalid, so use n=2,f=1 and corrupt both visits via worst case?
	// All robots visit at the same instant, so corrupting one still
	// leaves a detector — instead corrupt the first visitor of a
	// two-robot plan where only one robot reaches the target by using
	// the -faulty flag on the proportional schedule's earliest visitor.
	var out bytes.Buffer
	if err := run([]string{"-n", "2", "-f", "1", "-target", "4", "-strategy", "doubling", "-faulty", "0", "-quiet"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "detected") {
		t.Errorf("expected detection by the remaining reliable robot:\n%s", out.String())
	}
}

func TestRunMinDistance(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "3", "-f", "1", "-target", "200", "-mindist", "100", "-quiet"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	// At x = 2 * mindist the scaled schedule finds the target at
	// 623.307 (ratio 3.117) — well within the CR guarantee.
	if !strings.Contains(out.String(), "detected at t = 623.307") {
		t.Errorf("scaled detection wrong:\n%s", out.String())
	}
	// A target below the declared minimal distance is rejected.
	if err := run([]string{"-n", "3", "-f", "1", "-target", "50", "-mindist", "100"}, &out); err == nil {
		t.Error("target below mindist accepted")
	}
	if err := run([]string{"-n", "3", "-f", "1", "-target", "4", "-mindist", "-2"}, &out); err == nil {
		t.Error("negative mindist accepted")
	}
}

func TestParseIndices(t *testing.T) {
	got, err := parseIndices(" 0, 2 ,5")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 5 {
		t.Errorf("parseIndices = %v", got)
	}
	if _, err := parseIndices("1,,2"); err == nil {
		t.Error("empty element accepted")
	}
}

// TestRunRejectsNonFiniteFlags: NaN/Inf float flags fail fast with a
// clear error instead of producing garbage output.
func TestRunRejectsNonFiniteFlags(t *testing.T) {
	bad := [][]string{
		{"-n", "3", "-f", "1", "-target", "NaN"},
		{"-n", "3", "-f", "1", "-target", "+Inf"},
		{"-n", "3", "-f", "1", "-target", "-Inf"},
		{"-n", "3", "-f", "1", "-target", "4", "-mindist", "NaN"},
		{"-n", "3", "-f", "1", "-target", "4", "-mindist", "Inf"},
		{"-n", "3", "-f", "1", "-target", "4", "-strategy", "cone:Inf"},
	}
	for _, args := range bad {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) accepted non-finite input", args)
		}
	}
}
