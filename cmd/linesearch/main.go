// Command linesearch simulates one parallel search on the line: n
// robots, up to f faulty, a target position, and an optional explicit
// fault assignment. It prints the closed-form guarantees, the event
// timeline, and the detection summary.
//
// Usage:
//
//	linesearch -n 3 -f 1 -target 7.5 [-strategy proportional] [-faulty 0,2] [-quiet]
//
// Without -faulty the adversarial worst-case assignment is used (the f
// earliest visitors of the target are made faulty).
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"linesearch"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "linesearch:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("linesearch", flag.ContinueOnError)
	n := fs.Int("n", 3, "number of robots")
	f := fs.Int("f", 1, "maximum number of faulty robots")
	target := fs.Float64("target", 7.5, "target position (|x| >= 1)")
	stratName := fs.String("strategy", "", "strategy: proportional, twogroup, doubling, cone:<beta>, uniform:<beta> (default: the paper's recommendation)")
	faultyFlag := fs.String("faulty", "", "comma-separated faulty robot indices (default: adversarial worst case)")
	minDist := fs.Float64("mindist", 1, "known minimal target distance (scales the schedule)")
	quiet := fs.Bool("quiet", false, "suppress the event timeline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if math.IsNaN(*target) || math.IsInf(*target, 0) {
		return fmt.Errorf("target position must be a finite number, got %v", *target)
	}
	if math.IsNaN(*minDist) || math.IsInf(*minDist, 0) || *minDist <= 0 {
		return fmt.Errorf("minimal target distance must be a positive finite number, got %v", *minDist)
	}
	if math.Abs(*target) < *minDist {
		return fmt.Errorf("target %g is closer than the minimal distance %g", *target, *minDist)
	}

	opts := []linesearch.Option{linesearch.WithMinDistance(*minDist)}
	if *stratName != "" {
		opts = append(opts, linesearch.WithStrategy(*stratName))
	}
	s, err := linesearch.NewSearcher(*n, *f, opts...)
	if err != nil {
		return err
	}

	faulty := s.WorstFaultSet(*target)
	chosen := "adversarial worst case"
	if *faultyFlag != "" {
		if faulty, err = parseIndices(*faultyFlag); err != nil {
			return err
		}
		if len(faulty) > *f {
			return fmt.Errorf("%d faulty robots exceed the budget f=%d", len(faulty), *f)
		}
		chosen = "user supplied"
	}

	cr, err := s.CompetitiveRatio()
	if err != nil {
		return err
	}
	bounds, err := linesearch.Bounds(*n, *f)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "search on a line: n=%d robots, f=%d faulty, strategy=%s\n", *n, *f, s.Strategy())
	fmt.Fprintf(out, "regime: %s\n", bounds.Regime)
	fmt.Fprintf(out, "competitive ratio: %.6g (lower bound for any algorithm: %.6g)\n", cr, bounds.Lower)
	if !math.IsNaN(bounds.Beta) {
		fmt.Fprintf(out, "cone slope beta* = %.6g, expansion factor = %.6g\n", bounds.Beta, bounds.Expansion)
	}
	fmt.Fprintf(out, "target at x = %g, faulty robots %v (%s)\n\n", *target, faulty, chosen)

	detect, err := s.DetectionTime(*target, faulty)
	if err != nil {
		return err
	}
	worst, err := s.SearchTime(*target)
	if err != nil {
		return err
	}

	if !*quiet {
		horizon := worst * 1.05
		if math.IsInf(horizon, 1) {
			horizon = 100 * math.Abs(*target)
		}
		events, err := s.Timeline(*target, faulty, horizon)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "timeline:")
		for _, e := range events {
			fmt.Fprintf(out, "  t=%-12.4f robot %-2d %-7s x=%.4f\n", e.T, e.Robot, e.Kind, e.X)
		}
		fmt.Fprintln(out)
	}

	if math.IsInf(detect, 1) {
		fmt.Fprintf(out, "target NOT detected: every robot that reaches x=%g is faulty\n", *target)
	} else {
		fmt.Fprintf(out, "detected at t = %.6g (ratio %.6g; worst case for this target: t = %.6g, ratio %.6g)\n",
			detect, detect/math.Abs(*target), worst, worst/math.Abs(*target))
	}
	return nil
}

// parseIndices parses "0,2,5" into a sorted index list.
func parseIndices(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		idx, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("invalid robot index %q: %w", p, err)
		}
		out = append(out, idx)
	}
	return out, nil
}
