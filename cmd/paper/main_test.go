package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"linesearch/internal/experiments"
	"linesearch/internal/trace"
)

func TestRunSingleExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"table1"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"== table1:", "comp. ratio", "41  20"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"bogus"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	lines := strings.Fields(out.String())
	if len(lines) != len(experiments.IDs()) {
		t.Errorf("listed %d experiments, want %d", len(lines), len(experiments.IDs()))
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nope"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunExportsCSVAndJSON(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-csv", filepath.Join(dir, "csv"), "-json", filepath.Join(dir, "json"), "fig5right"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	csvPath := filepath.Join(dir, "csv", "fig5right.csv")
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatalf("read exported CSV: %v", err)
	}
	if !strings.HasPrefix(string(data), "a,cr\n") {
		t.Errorf("CSV header missing: %q", string(data[:20]))
	}
	jsonPath := filepath.Join(dir, "json", "fig5right.json")
	f, err := os.Open(jsonPath)
	if err != nil {
		t.Fatalf("open exported JSON: %v", err)
	}
	defer f.Close()
	ds, err := trace.ReadJSON(f)
	if err != nil {
		t.Fatalf("decode exported JSON: %v", err)
	}
	if ds.Name != "fig5right" || len(ds.Rows) != 101 {
		t.Errorf("exported dataset: name %q, %d rows", ds.Name, len(ds.Rows))
	}
}

func TestRunExportFailsOnUnwritableDir(t *testing.T) {
	var out bytes.Buffer
	// A path under a file (not a directory) cannot be created.
	tmp := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(tmp, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-csv", filepath.Join(tmp, "sub"), "table1"}, &out)
	if err == nil {
		t.Error("export into unwritable path succeeded")
	}
}
