// Command paper regenerates every table and figure of "Search on a Line
// with Faulty Robots" (PODC 2016), plus this repository's validation and
// ablation experiments.
//
// Usage:
//
//	paper [-csv DIR] [-json DIR] [experiment ...]
//
// With no arguments, every experiment runs. Known experiments:
// table1, fig1, fig2, fig3, fig4, fig5left, fig5right, fig6, fig7,
// lowerbound, asymptotics, verify, betasweep. The optional -csv/-json
// flags export each experiment's datasets into the given directory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"linesearch/internal/experiments"
	"linesearch/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "paper:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("paper", flag.ContinueOnError)
	csvDir := fs.String("csv", "", "directory to export CSV datasets into")
	jsonDir := fs.String("json", "", "directory to export JSON datasets into")
	list := fs.Bool("list", false, "list available experiments and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: paper [-csv DIR] [-json DIR] [experiment ...]\nexperiments: %s\n", strings.Join(experiments.IDs(), " "))
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Fprintln(out, strings.Join(experiments.IDs(), "\n"))
		return nil
	}

	ids := fs.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		res, err := experiments.Run(id)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "== %s: %s ==\n\n%s\n", res.ID, res.Title, res.Report)
		if err := export(res, *csvDir, *jsonDir); err != nil {
			return err
		}
	}
	return nil
}

// export writes the experiment's datasets into the requested formats.
func export(res *experiments.Result, csvDir, jsonDir string) error {
	for _, d := range res.Data {
		if csvDir != "" {
			if err := writeDataset(d, filepath.Join(csvDir, d.Name+".csv"), (*trace.Dataset).WriteCSV); err != nil {
				return err
			}
		}
		if jsonDir != "" {
			if err := writeDataset(d, filepath.Join(jsonDir, d.Name+".json"), (*trace.Dataset).WriteJSON); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeDataset(d *trace.Dataset, path string, write func(*trace.Dataset, io.Writer) error) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("export %s: %w", path, err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("export %s: %w", path, err)
	}
	if err := write(d, f); err != nil {
		f.Close()
		return fmt.Errorf("export %s: %w", path, err)
	}
	return f.Close()
}
