package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"math"
	"net/http/httptest"
	"net/url"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"linesearch/internal/cluster"
	"linesearch/internal/service"
)

func TestKeyPickerDeterministicAndWellFormed(t *testing.T) {
	a := newKeyPicker(7, 500, 1.2)
	b := newKeyPicker(7, 500, 1.2)
	seen := map[string]bool{}
	for i := 0; i < 2000; i++ {
		qa, qb := a.next(), b.next()
		if qa != qb {
			t.Fatalf("draw %d: same seed diverged: %q vs %q", i, qa, qb)
		}
		seen[qa] = true
		v, err := url.ParseQuery(qa)
		if err != nil {
			t.Fatalf("malformed query %q: %v", qa, err)
		}
		n, _ := strconv.Atoi(v.Get("n"))
		f, _ := strconv.Atoi(v.Get("f"))
		if n < 2 || f < 1 || f >= n {
			t.Fatalf("invalid plan key %q: f must be in [1, n)", qa)
		}
	}
	// Zipf skew: a handful of hot keys dominate, but the tail is drawn.
	if len(seen) < 10 {
		t.Fatalf("only %d distinct keys in 2000 draws; universe not sampled", len(seen))
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(vals, 0.50); p != 5 {
		t.Errorf("p50 = %v", p)
	}
	if p := percentile(vals, 0.99); p != 9 {
		t.Errorf("p99 = %v", p)
	}
	if p := percentile(nil, 0.99); p != 0 {
		t.Errorf("empty percentile = %v", p)
	}
}

func TestParseBucketsAndHistPercentile(t *testing.T) {
	exposition := `# HELP linesearchd_http_request_duration_seconds Request latency, by endpoint.
# TYPE linesearchd_http_request_duration_seconds histogram
linesearchd_http_request_duration_seconds_bucket{endpoint="/v1/plan",le="0.005"} 50
linesearchd_http_request_duration_seconds_bucket{endpoint="/v1/plan",le="0.01"} 90
linesearchd_http_request_duration_seconds_bucket{endpoint="/v1/plan",le="+Inf"} 100
linesearchd_http_request_duration_seconds_bucket{endpoint="/v1/searchtime",le="0.005"} 100
linesearchd_http_request_duration_seconds_bucket{endpoint="/v1/searchtime",le="0.01"} 100
linesearchd_http_request_duration_seconds_bucket{endpoint="/v1/searchtime",le="+Inf"} 100
linesearchd_http_request_duration_seconds_sum{endpoint="/v1/plan"} 0.9
linesearchd_http_request_duration_seconds_count{endpoint="/v1/plan"} 100
`
	buckets, err := parseBuckets(strings.NewReader(exposition), histogramFamilies)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 3 {
		t.Fatalf("buckets = %v, want 3 aggregated bounds", buckets)
	}
	// Aggregated across the two endpoints: 150 at 5ms, 190 at 10ms, 200 total.
	if buckets[0].count != 150 || buckets[1].count != 190 || buckets[2].count != 200 {
		t.Fatalf("aggregation wrong: %+v", buckets)
	}
	p50 := histPercentile(buckets, 0.50)
	if p50 <= 0 || p50 > 0.005 {
		t.Errorf("p50 = %v, want within the first bucket", p50)
	}
	// p99 rank is 198 of 200: lands in the +Inf bucket, clamped to the
	// last finite bound.
	if p99 := histPercentile(buckets, 0.99); p99 != 0.01 {
		t.Errorf("p99 = %v, want clamp to 0.01", p99)
	}
	if !math.IsInf(buckets[2].le, 1) {
		t.Errorf("last bucket bound = %v, want +Inf", buckets[2].le)
	}
}

func TestGate(t *testing.T) {
	dir := t.TempDir() + "/budget.json"
	if err := os.WriteFile(dir, []byte(`{"p99_ms": 100, "max_error_rate": 0.01}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := gate(report{P99Millis: 50, ErrorRate: 0}, dir, &out); err != nil {
		t.Fatalf("within-budget run failed the gate: %v", err)
	}
	if err := gate(report{P99Millis: 150}, dir, &out); err == nil {
		t.Fatal("p99 over budget passed the gate")
	}
	if err := gate(report{P99Millis: 50, ErrorRate: 0.5}, dir, &out); err == nil {
		t.Fatal("error rate over budget passed the gate")
	}
}

// TestClusterSmoke is the CI smoke gate: a 2-backend fleet behind the
// router, fixed low-QPS open-loop load, client p99 checked against the
// checked-in budget, server-side percentiles read back from the
// router's Prometheus exposition. Run under -race via `make
// cluster-smoke`.
func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke run skipped in -short mode")
	}
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	var urls []string
	for i := 0; i < 2; i++ {
		svc := service.New(service.Config{Logger: quiet})
		srv := httptest.NewServer(svc.Handler())
		t.Cleanup(func() { srv.Close(); svc.Close() })
		urls = append(urls, srv.URL)
	}
	router, err := cluster.New(cluster.Config{
		Backends:       urls,
		HealthInterval: -1,
		Logger:         quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(router.Close)
	front := httptest.NewServer(router.Handler())
	t.Cleanup(front.Close)

	rep, err := execute(context.Background(), config{
		target:      front.URL,
		duration:    2 * time.Second,
		qps:         50, // fixed low rate: this gates regressions, not capacity
		concurrency: 8,
		keys:        100,
		zipfS:       1.2,
		seed:        1,
		sloGate:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests < 50 {
		t.Fatalf("only %d requests in the smoke window; load loop broken", rep.Requests)
	}
	if err := gate(rep, "testdata/p99_budget.json", io.Discard); err != nil {
		t.Fatalf("smoke run exceeded the checked-in budget: %v (report: %+v)", err, rep)
	}
	// The read-back must have found the router's per-backend histogram.
	if rep.ServerNote != "" {
		t.Fatalf("server-side read-back failed: %s", rep.ServerNote)
	}
	if rep.ServerP99 <= 0 {
		t.Fatalf("server p99 = %v, want a positive read-back", rep.ServerP99)
	}
	// A healthy low-rate run must also pass the router's own SLO verdict.
	if err := sloGate(rep, 1.0, io.Discard); err != nil {
		t.Fatalf("smoke run failed the SLO gate: %v (burn: %v)", err, rep.SLOBurn)
	}
}

// TestRunFlagsAndReport drives the full flag path against one backend.
func TestRunFlagsAndReport(t *testing.T) {
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	svc := service.New(service.Config{Logger: quiet})
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { srv.Close(); svc.Close() })

	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-target", srv.URL,
		"-duration", "300ms",
		"-concurrency", "2",
		"-keys", "20",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	var rep report
	dec := json.NewDecoder(&out)
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, out.String())
	}
	if rep.Mode != "closed" || rep.Requests == 0 || rep.ErrorRate != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.ServerP99 <= 0 {
		t.Fatalf("server read-back missing from report: %+v", rep)
	}
}

func TestRunRequiresTarget(t *testing.T) {
	if err := run(context.Background(), nil, io.Discard); err == nil {
		t.Fatal("run without -target succeeded")
	}
}
