// Command loadgen drives a linesearchd service or a linerouter fleet
// with a configurable query mix and reports latency percentiles from
// both sides: the client's own samples and the server's Prometheus
// histogram read back from /metrics. Key skew is zipfian — a few hot
// plan keys and a long tail — which is exactly the workload a plan
// cache and a warm transfer exist for.
//
// Usage:
//
//	loadgen -target http://127.0.0.1:8090 [-duration 10s]
//	        [-qps 0] [-concurrency 8]           closed loop: workers back to back
//	        [-qps 200]                          open loop: fixed arrival rate
//	        [-keys 500] [-zipf-s 1.2] [-seed 1]
//	        [-p99-budget testdata/p99_budget.json]
//	        [-slo-gate] [-slo-max-burn 1.0]
//
// With -p99-budget, the run is a gate: it exits non-zero when the
// observed client p99 or error rate exceeds the checked-in budget.
//
// With -slo-gate, loadgen reads the router's own SLO burn-rate gauges
// (linerouter_slo_error_burn_rate / linerouter_slo_latency_burn_rate)
// back from /metrics after the run and exits non-zero when any window
// burns faster than -slo-max-burn — the server-side verdict on the
// load just generated, complementing the client-side -p99-budget.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// config is one load run, parsed from flags (tests fill it directly).
type config struct {
	target      string
	duration    time.Duration
	qps         float64 // > 0 selects the open loop
	concurrency int
	keys        int     // plan-key universe size
	zipfS       float64 // zipf exponent; larger = hotter head
	seed        int64
	budgetPath  string
	sloGate     bool
	sloMaxBurn  float64
	client      *http.Client
}

// report is the run summary printed as JSON.
type report struct {
	Mode       string  `json:"mode"` // "closed" or "open"
	Requests   int64   `json:"requests"`
	Errors     int64   `json:"errors"`
	ErrorRate  float64 `json:"error_rate"`
	Duration   float64 `json:"duration_seconds"`
	QPS        float64 `json:"achieved_qps"`
	P50Millis  float64 `json:"client_p50_ms"`
	P90Millis  float64 `json:"client_p90_ms"`
	P99Millis  float64 `json:"client_p99_ms"`
	ServerP50  float64 `json:"server_p50_ms,omitempty"`
	ServerP99  float64 `json:"server_p99_ms,omitempty"`
	ServerNote string  `json:"server_note,omitempty"`
	// SLOBurn is the router's burn-rate read-back (family -> window ->
	// burn), present only with -slo-gate.
	SLOBurn map[string]map[string]float64 `json:"slo_burn,omitempty"`
	SLONote string                        `json:"slo_note,omitempty"`
}

// budget is the checked-in gate for smoke runs: the worst acceptable
// client p99 and error rate at the smoke test's fixed low QPS.
type budget struct {
	P99Millis    float64 `json:"p99_ms"`
	MaxErrorRate float64 `json:"max_error_rate"`
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	cfg := config{}
	fs.StringVar(&cfg.target, "target", "", "base URL of the linesearchd or linerouter to drive (required)")
	fs.DurationVar(&cfg.duration, "duration", 10*time.Second, "how long to generate load")
	fs.Float64Var(&cfg.qps, "qps", 0, "open-loop arrival rate (0 = closed loop at -concurrency)")
	fs.IntVar(&cfg.concurrency, "concurrency", 8, "closed-loop worker count (also caps open-loop in-flight)")
	fs.IntVar(&cfg.keys, "keys", 500, "distinct plan keys in the zipfian universe")
	fs.Float64Var(&cfg.zipfS, "zipf-s", 1.2, "zipf exponent (>1; larger skews hotter)")
	fs.Int64Var(&cfg.seed, "seed", 1, "RNG seed: same seed, same key sequence")
	fs.StringVar(&cfg.budgetPath, "p99-budget", "", "JSON budget file; exceeding it fails the run")
	fs.BoolVar(&cfg.sloGate, "slo-gate", false, "read the router's SLO burn rates back after the run and fail when any exceeds -slo-max-burn")
	fs.Float64Var(&cfg.sloMaxBurn, "slo-max-burn", 1.0, "worst acceptable burn rate per window (1.0 = burning exactly at the objective's allowed rate)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cfg.target == "" {
		return fmt.Errorf("-target is required")
	}
	rep, err := execute(ctx, cfg)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if cfg.budgetPath != "" {
		if err := gate(rep, cfg.budgetPath, out); err != nil {
			return err
		}
	}
	if cfg.sloGate {
		return sloGate(rep, cfg.sloMaxBurn, out)
	}
	return nil
}

// sloGate fails the run when any burn-rate window read back from the
// router exceeds maxBurn. A target without the gauges (not a
// linerouter) fails too: asking for the gate against a backend that
// cannot answer it should be loud, not silently green.
func sloGate(rep report, maxBurn float64, out io.Writer) error {
	if rep.SLONote != "" {
		return fmt.Errorf("slo gate: %s", rep.SLONote)
	}
	if len(rep.SLOBurn) == 0 {
		return fmt.Errorf("slo gate: target exposes no linerouter_slo_*_burn_rate gauges (is it a linerouter?)")
	}
	worst, worstAt := 0.0, "n/a"
	for fam, wins := range rep.SLOBurn {
		for win, burn := range wins {
			if burn > worst {
				worst, worstAt = burn, fmt.Sprintf("%s{window=%q}", fam, win)
			}
			if burn > maxBurn {
				return fmt.Errorf("slo gate: %s{window=%q} burn %.3f exceeds %.3f", fam, win, burn, maxBurn)
			}
		}
	}
	fmt.Fprintf(out, "loadgen: slo gate passed (worst burn %.3f at %s, limit %.3f)\n", worst, worstAt, maxBurn)
	return nil
}

// gate compares the run against the checked-in budget.
func gate(rep report, path string, out io.Writer) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read budget: %w", err)
	}
	var b budget
	if err := json.Unmarshal(blob, &b); err != nil {
		return fmt.Errorf("decode budget %s: %w", path, err)
	}
	if b.P99Millis > 0 && rep.P99Millis > b.P99Millis {
		return fmt.Errorf("p99 %.2fms exceeds budget %.2fms", rep.P99Millis, b.P99Millis)
	}
	if rep.ErrorRate > b.MaxErrorRate {
		return fmt.Errorf("error rate %.4f exceeds budget %.4f", rep.ErrorRate, b.MaxErrorRate)
	}
	fmt.Fprintf(out, "loadgen: within budget (p99 %.2fms <= %.2fms, errors %.4f <= %.4f)\n",
		rep.P99Millis, b.P99Millis, rep.ErrorRate, b.MaxErrorRate)
	return nil
}

// keyPicker maps zipf ranks onto plan-key query strings. Rank 0 is the
// hottest key; the (n, f) pairs walk the valid f < n lattice so every
// generated query is well-formed.
type keyPicker struct {
	zipf *rand.Zipf
	keys []string
}

func newKeyPicker(seed int64, universe int, s float64) *keyPicker {
	if universe < 1 {
		universe = 1
	}
	if s <= 1 {
		s = 1.1
	}
	keys := make([]string, 0, universe)
	// Enumerate (n, f) pairs in increasing plan size: n=2 f=1, n=3 f=1,
	// n=3 f=2, ... Small plans are cheap and early (hot ranks), large
	// plans expensive and rare — the shape a real client mix has.
	for n := 2; len(keys) < universe; n++ {
		for f := 1; f < n && len(keys) < universe; f++ {
			keys = append(keys, fmt.Sprintf("n=%d&f=%d", n, f))
		}
	}
	rng := rand.New(rand.NewSource(seed))
	return &keyPicker{
		zipf: rand.NewZipf(rng, s, 1, uint64(universe-1)),
		keys: keys,
	}
}

// next returns the query string for one zipf-drawn key. Not safe for
// concurrent use; each worker owns a picker.
func (p *keyPicker) next() string { return p.keys[p.zipf.Uint64()] }

// sample is one completed request.
type sample struct {
	latency time.Duration
	failed  bool
}

// execute runs the load and assembles the report.
func execute(ctx context.Context, cfg config) (report, error) {
	if cfg.client == nil {
		cfg.client = &http.Client{Timeout: 10 * time.Second}
	}
	if cfg.concurrency < 1 {
		cfg.concurrency = 1
	}
	ctx, cancel := context.WithTimeout(ctx, cfg.duration)
	defer cancel()

	var mu sync.Mutex
	var samples []sample
	var sent atomic.Int64
	record := func(s sample) {
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	}
	fire := func(query string) {
		url := cfg.target + "/v1/plan?" + query
		start := time.Now()
		ok := false
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err == nil {
			resp, derr := cfg.client.Do(req)
			if derr == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				ok = resp.StatusCode == http.StatusOK
			}
		}
		if ctx.Err() != nil && !ok {
			return // shutdown race, not a server failure
		}
		record(sample{latency: time.Since(start), failed: !ok})
	}

	start := time.Now()
	mode := "closed"
	if cfg.qps > 0 {
		mode = "open"
		runOpenLoop(ctx, cfg, fire, &sent)
	} else {
		runClosedLoop(ctx, cfg, fire, &sent)
	}
	elapsed := time.Since(start)

	rep := report{Mode: mode, Duration: elapsed.Seconds()}
	lat := make([]float64, 0, len(samples))
	for _, s := range samples {
		rep.Requests++
		if s.failed {
			rep.Errors++
		} else {
			lat = append(lat, float64(s.latency)/float64(time.Millisecond))
		}
	}
	if rep.Requests > 0 {
		rep.ErrorRate = float64(rep.Errors) / float64(rep.Requests)
		rep.QPS = float64(rep.Requests) / elapsed.Seconds()
	}
	sort.Float64s(lat)
	rep.P50Millis = percentile(lat, 0.50)
	rep.P90Millis = percentile(lat, 0.90)
	rep.P99Millis = percentile(lat, 0.99)

	// Server-side read-back: the target's own latency histogram, scraped
	// from its Prometheus exposition. Only best-effort — a target
	// without /metrics just leaves the fields empty. The load context
	// has expired by now (that is what ended the run), so the scrape
	// gets its own short deadline.
	scrapeCtx, scrapeCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scrapeCancel()
	if p50, p99, err := serverPercentiles(scrapeCtx, cfg.client, cfg.target); err != nil {
		rep.ServerNote = "metrics read-back failed: " + err.Error()
	} else {
		rep.ServerP50 = p50 * 1000
		rep.ServerP99 = p99 * 1000
	}
	if cfg.sloGate {
		if burn, err := sloBurnRates(scrapeCtx, cfg.client, cfg.target); err != nil {
			rep.SLONote = "burn-rate read-back failed: " + err.Error()
		} else {
			rep.SLOBurn = burn
		}
	}
	return rep, nil
}

// runClosedLoop keeps cfg.concurrency workers issuing back to back —
// offered load adapts to service speed, the classic saturation probe.
func runClosedLoop(ctx context.Context, cfg config, fire func(string), sent *atomic.Int64) {
	var wg sync.WaitGroup
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		picker := newKeyPicker(cfg.seed+int64(w), cfg.keys, cfg.zipfS)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				sent.Add(1)
				fire(picker.next())
			}
		}()
	}
	wg.Wait()
}

// runOpenLoop fires at a fixed arrival rate regardless of completion —
// queueing delay shows up in the percentiles instead of hiding in a
// reduced request count. In-flight work is capped at 4x concurrency so
// a stalled target cannot leak unbounded goroutines; arrivals past the
// cap are dropped (and would read as missing QPS in the report).
func runOpenLoop(ctx context.Context, cfg config, fire func(string), sent *atomic.Int64) {
	interval := time.Duration(float64(time.Second) / cfg.qps)
	if interval <= 0 {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	slots := make(chan struct{}, cfg.concurrency*4)
	var wg sync.WaitGroup
	picker := newKeyPicker(cfg.seed, cfg.keys, cfg.zipfS)
	for {
		select {
		case <-ctx.Done():
			wg.Wait()
			return
		case <-ticker.C:
			select {
			case slots <- struct{}{}:
			default:
				continue // in-flight cap reached; drop the arrival
			}
			sent.Add(1)
			query := picker.next() // drawn on the arrival goroutine: one zipf stream, no lock
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-slots }()
				fire(query)
			}()
		}
	}
}

// percentile returns the q-th percentile of sorted values (linear
// index, no interpolation — stable and simple for gate comparisons).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}
