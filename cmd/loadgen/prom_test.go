package main

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestParseBucketLineHardened pins the parser against the exposition
// variants a scrape we do not control can produce: OpenMetrics
// exemplars, trailing timestamps, float-rendered counters, and label
// values containing braces or escaped quotes. The value must always be
// the first token after the label set — a LastIndex-style scan grabs
// the exemplar's timestamp instead.
func TestParseBucketLineHardened(t *testing.T) {
	cases := []struct {
		name  string
		line  string
		le    float64
		count int64
		ok    bool
	}{
		{
			name: "plain",
			line: `m_bucket{le="0.005"} 42`,
			le:   0.005, count: 42, ok: true,
		},
		{
			name: "inf bound",
			line: `m_bucket{le="+Inf"} 100`,
			le:   math.Inf(1), count: 100, ok: true,
		},
		{
			name: "exemplar annotation",
			line: `m_bucket{le="0.1"} 42 # {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 0.094 1700000000.5`,
			le:   0.1, count: 42, ok: true,
		},
		{
			name: "trailing timestamp",
			line: `m_bucket{le="0.25"} 7 1700000000123`,
			le:   0.25, count: 7, ok: true,
		},
		{
			name: "float-rendered counter",
			line: `m_bucket{le="0.5"} 42.0`,
			le:   0.5, count: 42, ok: true,
		},
		{
			name: "scientific notation",
			line: `m_bucket{le="1"} 1e3`,
			le:   1, count: 1000, ok: true,
		},
		{
			name: "label value with closing brace",
			line: `m_bucket{path="/v1/{id}",le="0.01"} 5`,
			le:   0.01, count: 5, ok: true,
		},
		{
			name: "label value with escaped quote",
			line: `m_bucket{path="/odd\"name",le="0.02"} 3`,
			le:   0.02, count: 3, ok: true,
		},
		{name: "no le label", line: `m_bucket{endpoint="/x"} 5`, ok: false},
		{name: "unterminated le", line: `m_bucket{le="0.005 42`, ok: false},
		{name: "non-integer count", line: `m_bucket{le="0.005"} 4.2`, ok: false},
		{name: "NaN value", line: `m_bucket{le="0.005"} NaN`, ok: false},
		{name: "missing value", line: `m_bucket{le="0.005"}`, ok: false},
		{name: "unclosed label set", line: `m_bucket{le="0.005" 42`, ok: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			le, count, ok := parseBucketLine(tc.line)
			if ok != tc.ok {
				t.Fatalf("ok = %v, want %v", ok, tc.ok)
			}
			if !ok {
				return
			}
			if le != tc.le && !(math.IsInf(tc.le, 1) && math.IsInf(le, 1)) {
				t.Errorf("le = %v, want %v", le, tc.le)
			}
			if count != tc.count {
				t.Errorf("count = %d, want %d", count, tc.count)
			}
		})
	}
}

// TestParseBucketsSkipsForeignFamilies feeds a mixed exposition — the
// families loadgen knows plus unknown ones, comments, exemplars and a
// malformed line — and requires the aggregation to only count the
// known family's well-formed samples.
func TestParseBucketsSkipsForeignFamilies(t *testing.T) {
	exposition := strings.Join([]string{
		`# HELP linesearchd_http_request_duration_seconds Request latency.`,
		`# TYPE linesearchd_http_request_duration_seconds histogram`,
		`some_other_histogram_bucket{le="0.005"} 999`,
		`linesearchd_http_request_duration_seconds_bucket{endpoint="/v1/plan",le="0.005"} 50 # {trace_id="abc"} 0.004`,
		`linesearchd_http_request_duration_seconds_bucket{endpoint="/v1/plan",le="+Inf"} 60 1700000000`,
		`linesearchd_http_request_duration_seconds_bucket{endpoint="/v1/plan",le="oops"} 1`,
		`go_gc_duration_seconds{quantile="0.5"} 0.0001`,
		`linesearchd_http_request_duration_seconds_sum{endpoint="/v1/plan"} 0.9`,
		``,
	}, "\n")
	buckets, err := parseBuckets(strings.NewReader(exposition), histogramFamilies)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 2 {
		t.Fatalf("buckets = %+v, want exactly the two well-formed bounds", buckets)
	}
	if buckets[0].le != 0.005 || buckets[0].count != 50 {
		t.Errorf("first bucket = %+v", buckets[0])
	}
	if !math.IsInf(buckets[1].le, 1) || buckets[1].count != 60 {
		t.Errorf("inf bucket = %+v", buckets[1])
	}
}

// TestParseWindowGauges covers the -slo-gate read-back path against
// the same mixed-input hazards.
func TestParseWindowGauges(t *testing.T) {
	exposition := strings.Join([]string{
		`# TYPE linerouter_slo_error_burn_rate gauge`,
		`linerouter_slo_error_burn_rate{window="5m"} 0.5`,
		`linerouter_slo_error_burn_rate{window="1h"} 0.125 1700000000`,
		`linerouter_slo_latency_burn_rate{window="5m"} 2.5 # {trace_id="abc"} 0.3`,
		`linerouter_slo_latency_burn_rate{window="1h"} 1e-2`,
		`linerouter_slo_window_requests{window="5m"} 100`,
		`linerouter_slo_error_burn_rate{nowindow="x"} 9`,
		`unrelated_gauge{window="5m"} 7`,
		``,
	}, "\n")
	got, err := parseWindowGauges(strings.NewReader(exposition), sloBurnFamilies)
	if err != nil {
		t.Fatal(err)
	}
	errBurn := got["linerouter_slo_error_burn_rate"]
	latBurn := got["linerouter_slo_latency_burn_rate"]
	if errBurn["5m"] != 0.5 || errBurn["1h"] != 0.125 {
		t.Errorf("error burn = %v", errBurn)
	}
	if latBurn["5m"] != 2.5 || latBurn["1h"] != 0.01 {
		t.Errorf("latency burn = %v", latBurn)
	}
	if len(got) != 2 {
		t.Errorf("unexpected families parsed: %v", got)
	}
}

func TestSLOGate(t *testing.T) {
	burn := map[string]map[string]float64{
		"linerouter_slo_error_burn_rate":   {"5m": 0.4, "1h": 0.1},
		"linerouter_slo_latency_burn_rate": {"5m": 0.9, "1h": 0.2},
	}
	var out bytes.Buffer
	if err := sloGate(report{SLOBurn: burn}, 1.0, &out); err != nil {
		t.Fatalf("within-limit burn failed the gate: %v", err)
	}
	if !strings.Contains(out.String(), "slo gate passed") {
		t.Errorf("no pass line printed: %q", out.String())
	}
	burn["linerouter_slo_latency_burn_rate"]["5m"] = 1.5
	if err := sloGate(report{SLOBurn: burn}, 1.0, &out); err == nil {
		t.Fatal("over-limit burn passed the gate")
	}
	if err := sloGate(report{}, 1.0, &out); err == nil {
		t.Fatal("gate passed against a target with no SLO gauges")
	}
	if err := sloGate(report{SLONote: "burn-rate read-back failed: boom"}, 1.0, &out); err == nil {
		t.Fatal("gate passed despite a failed read-back")
	}
}
