package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// histogramFamilies are the latency histograms loadgen knows how to
// read back, in preference order: the service's own request histogram
// when the target is a linesearchd, the per-backend proxy histogram
// when it is a linerouter.
var histogramFamilies = []string{
	"linesearchd_http_request_duration_seconds",
	"linerouter_backend_request_duration_seconds",
}

// serverPercentiles scrapes the target's Prometheus exposition and
// returns the p50 and p99 (in seconds) of its request-latency
// histogram, aggregated across every label set of the family. This is
// the server's own view of the run just generated — comparing it with
// the client-side percentiles separates service latency from queueing
// and network time.
func serverPercentiles(ctx context.Context, client *http.Client, target string) (p50, p99 float64, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/metrics?format=prometheus", nil)
	if err != nil {
		return 0, 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("metrics returned %s", resp.Status)
	}
	buckets, err := parseBuckets(resp.Body, histogramFamilies)
	if err != nil {
		return 0, 0, err
	}
	if len(buckets) == 0 {
		return 0, 0, fmt.Errorf("no latency histogram in exposition")
	}
	return histPercentile(buckets, 0.50), histPercentile(buckets, 0.99), nil
}

// bucket is one cumulative histogram bucket: count of observations at
// or below the upper bound (in seconds; +Inf is math.Inf(1)).
type bucket struct {
	le    float64
	count int64
}

// parseBuckets scans a Prometheus text exposition for the first family
// in families that has samples, summing `<family>_bucket` lines across
// label sets by upper bound. The exposition format's cumulative-bucket
// convention makes cross-label aggregation a plain sum.
func parseBuckets(r io.Reader, families []string) ([]bucket, error) {
	sums := make(map[string]map[float64]int64, len(families))
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		for _, fam := range families {
			prefix := fam + "_bucket"
			if !strings.HasPrefix(line, prefix) {
				continue
			}
			le, count, ok := parseBucketLine(line)
			if !ok {
				continue
			}
			if sums[fam] == nil {
				sums[fam] = make(map[float64]int64)
			}
			sums[fam][le] += count
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, fam := range families {
		if byLE := sums[fam]; len(byLE) > 0 {
			out := make([]bucket, 0, len(byLE))
			for le, c := range byLE {
				out = append(out, bucket{le: le, count: c})
			}
			sort.Slice(out, func(i, j int) bool { return out[i].le < out[j].le })
			return out, nil
		}
	}
	return nil, nil
}

// parseBucketLine extracts the le label and sample value from one
// `<name>_bucket{...le="0.005"...} 42` line. Lines from scrapers we
// do not control may carry a trailing timestamp or an OpenMetrics
// exemplar (`... 42 # {trace_id="..."} 0.003 1700000000`), so the
// value is the first token after the label set — never the last token
// on the line.
func parseBucketLine(line string) (le float64, count int64, ok bool) {
	li := strings.Index(line, `le="`)
	if li < 0 {
		return 0, 0, false
	}
	rest := line[li+4:]
	qi := strings.IndexByte(rest, '"')
	if qi < 0 {
		return 0, 0, false
	}
	leStr := rest[:qi]
	if leStr == "+Inf" {
		le = math.Inf(1)
	} else {
		var err error
		if le, err = strconv.ParseFloat(leStr, 64); err != nil {
			return 0, 0, false
		}
	}
	val, ok := sampleValue(line)
	if !ok {
		return 0, 0, false
	}
	// Counters may be rendered as floats (e.g. "42.0" or "1e3") by
	// other exporters; accept them as long as they are whole-valued.
	f, err := strconv.ParseFloat(val, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) || f != math.Trunc(f) {
		return 0, 0, false
	}
	return le, int64(f), true
}

// sampleValue returns the value token of one exposition sample line:
// the first whitespace-separated token after the metric name and its
// (optional) label set. Trailing timestamps and exemplar annotations
// are ignored. Label values may themselves contain '}' or spaces, so
// the end of the label set is found by walking the quoted strings
// rather than searching for the first closing brace.
func sampleValue(line string) (string, bool) {
	after := line
	if bi := strings.IndexByte(line, '{'); bi >= 0 {
		end, ok := labelSetEnd(line, bi)
		if !ok {
			return "", false
		}
		after = line[end+1:]
	} else if sp := strings.IndexAny(line, " \t"); sp >= 0 {
		after = line[sp:]
	} else {
		return "", false
	}
	fields := strings.Fields(after)
	if len(fields) == 0 || fields[0] == "#" {
		return "", false
	}
	return fields[0], true
}

// labelSetEnd returns the index of the '}' closing the label set that
// opens at line[open], honoring quoted label values with escaped
// quotes (`le="0.005"`, `path="/odd\"name"`).
func labelSetEnd(line string, open int) (int, bool) {
	inQuotes := false
	for i := open + 1; i < len(line); i++ {
		switch line[i] {
		case '\\':
			if inQuotes {
				i++ // skip the escaped byte
			}
		case '"':
			inQuotes = !inQuotes
		case '}':
			if !inQuotes {
				return i, true
			}
		}
	}
	return 0, false
}

// sloBurnFamilies are the router gauges the -slo-gate reads back.
var sloBurnFamilies = []string{
	"linerouter_slo_error_burn_rate",
	"linerouter_slo_latency_burn_rate",
}

// sloBurnRates scrapes the target's exposition for the SLO burn-rate
// gauges and returns them keyed family -> window label -> burn. A
// target that is not a linerouter (no such family) returns empty maps,
// not an error: the gate reports that distinctly.
func sloBurnRates(ctx context.Context, client *http.Client, target string) (map[string]map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/metrics?format=prometheus", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics returned %s", resp.Status)
	}
	return parseWindowGauges(resp.Body, sloBurnFamilies)
}

// parseWindowGauges scans an exposition for the given gauge families,
// collecting each sample's window label and value. Unknown families,
// comments, timestamps and exemplars are skipped — same hardening as
// parseBuckets.
func parseWindowGauges(r io.Reader, families []string) (map[string]map[string]float64, error) {
	out := make(map[string]map[string]float64, len(families))
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		for _, fam := range families {
			if !strings.HasPrefix(line, fam+"{") {
				continue
			}
			wi := strings.Index(line, `window="`)
			if wi < 0 {
				continue
			}
			rest := line[wi+8:]
			qi := strings.IndexByte(rest, '"')
			if qi < 0 {
				continue
			}
			window := rest[:qi]
			val, ok := sampleValue(line)
			if !ok {
				continue
			}
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || math.IsNaN(f) {
				continue
			}
			if out[fam] == nil {
				out[fam] = make(map[string]float64)
			}
			out[fam][window] = f
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// histPercentile estimates the q-th percentile from cumulative buckets
// with linear interpolation inside the landing bucket (the standard
// histogram_quantile estimate). The +Inf bucket clamps to the last
// finite bound: no upper bound exists to interpolate toward.
func histPercentile(buckets []bucket, q float64) float64 {
	if len(buckets) == 0 {
		return 0
	}
	total := buckets[len(buckets)-1].count
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var prevCount int64
	prevLE := 0.0
	for _, b := range buckets {
		if float64(b.count) >= rank {
			if math.IsInf(b.le, 1) {
				return prevLE
			}
			inBucket := float64(b.count - prevCount)
			if inBucket <= 0 {
				return b.le
			}
			return prevLE + (b.le-prevLE)*(rank-float64(prevCount))/inBucket
		}
		prevCount = b.count
		prevLE = b.le
	}
	return prevLE
}
