// Byzantine: search with lying robots. Five robots leave the origin; at
// most one is Byzantine — it may stay silent at the target or actively
// plant a false "target found" claim elsewhere. Detection waits for
// enough distinct truthful claims to outvote any liar coalition: with
// f=1 and the default threshold f+1=2, the search accepts the target at
// the 3rd distinct visitor (rank f+votes).
package main

import (
	"fmt"
	"log"

	"linesearch"
)

func main() {
	// The byzantine fault model wraps the paper's crash machinery: the
	// schedule is the recommended crash strategy at the effective
	// budget rank-1, so every closed form still applies.
	s, err := linesearch.NewSearcher(5, 1, linesearch.WithFaultModel("byzantine"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("strategy: %s (model %s, %d votes, detection rank %d)\n",
		s.Strategy(), s.FaultModel(), s.Votes(), s.DetectionRank())

	cr, err := s.CompetitiveRatio()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("competitive ratio: %.4f (equals the crash pair n=5, f'=%d)\n\n",
		cr, s.DetectionRank()-1)

	// A target hides at x = 7. The worst case is the same whether the
	// Byzantine robot lies or stays silent: lies never delay the vote.
	const target = 7.0
	worst, err := s.SearchTime(target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("target at x = %g: accepted within t = %.4f (ratio %.4f)\n", target, worst, worst/target)

	// Replay a search where the adversary's robot actively lies: it
	// plants a false claim at the mirror position -x. The vote rule
	// shrugs it off — a single claim never reaches the threshold.
	liar := s.WorstFaultSet(target)
	fmt.Printf("designated liar: robot %v\n\n", liar)
	events, err := s.TimelineFaults(target, nil, liar, 4*worst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("event timeline (claims accumulate until the vote passes):")
	for _, e := range events {
		switch e.Kind {
		case "claim", "false-claim", "detect":
			fmt.Printf("  t=%-10.4f robot %d %-12s x=%.4f\n", e.T, e.Robot, e.Kind, e.X)
		}
	}

	// A stricter threshold buys confirmation at the price of time:
	// votes=3 waits for the 4th distinct visitor.
	strict, err := linesearch.NewSearcher(5, 1,
		linesearch.WithFaultModel("byzantine"), linesearch.WithVotes(3))
	if err != nil {
		log.Fatal(err)
	}
	t3, err := strict.SearchTime(target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith votes=3 (rank %d): accepted within t = %.4f\n", strict.DetectionRank(), t3)
}
