// Adversarial: plays the Theorem 2 adversary against several concrete
// strategies. The adversary owns a ladder of target placements
// x_0 > x_1 > ... > x_{n-1} > 1; whatever the robots do, some placement
// is confirmed no earlier than alpha times its distance, where alpha
// solves (alpha-1)^n (alpha-3) = 2^(n+1).
//
// The example shows the bound holding for the paper's optimal algorithm
// (which nearly meets it for n = 2f+1), for deliberately mistuned cone
// schedules, and for the doubling baseline (which overshoots it badly).
package main

import (
	"fmt"
	"log"

	"linesearch"
)

func main() {
	const n, f = 5, 2 // n = 2f+1: the regime where A(n, f) is asymptotically optimal

	fmt.Printf("Theorem 2 adversary vs concrete strategies, n=%d robots, f=%d faulty\n\n", n, f)
	fmt.Printf("%-18s %12s %14s %16s\n", "strategy", "alpha", "ladder ratio", "competitive ratio")

	for _, name := range []string{"proportional", "cone:1.2", "cone:2.5", "doubling"} {
		s, err := linesearch.NewWithStrategy(name, n, f)
		if err != nil {
			log.Fatal(err)
		}
		alpha, ratio, err := s.VerifyLowerBound()
		if err != nil {
			log.Fatalf("%s: lower bound violated or inapplicable: %v", name, err)
		}
		cr, err := s.CompetitiveRatio()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %12.4f %14.4f %16.4f\n", name, alpha, ratio, cr)
	}

	fmt.Println("\nreading the table:")
	fmt.Println("  - every ladder ratio is >= alpha: no strategy escapes the adversary;")
	fmt.Println("  - the optimal schedule suffers the least on the ladder;")
	fmt.Println("  - mistuned cones and the doubling pack pay a visible premium.")

	// The gap closes as n grows with n = 2f+1: CR -> 3 and alpha -> 3.
	fmt.Println("\nasymptotic optimality for n = 2f+1:")
	for _, ff := range []int{2, 10, 50, 250} {
		nn := 2*ff + 1
		upper, err := linesearch.CompetitiveRatio(nn, ff)
		if err != nil {
			log.Fatal(err)
		}
		lower, err := linesearch.LowerBound(nn, ff)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  n=%4d: lower %.4f <= CR(A) %.4f, gap %.4f\n", nn, lower, upper, upper-lower)
	}
}
