// Quickstart: build the paper's recommended searcher for 3 robots with
// at most 1 fault, look up its guarantees, and run one search.
package main

import (
	"fmt"
	"log"

	"linesearch"
)

func main() {
	// Three robots leave the origin; at most one is faulty (it follows
	// its trajectory but can never detect the target).
	s, err := linesearch.New(3, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Closed-form guarantees from the paper.
	b, err := linesearch.Bounds(3, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("strategy: %s (%s)\n", s.Strategy(), b.Regime)
	fmt.Printf("competitive ratio: %.4f   (no algorithm can beat %.4f)\n", b.Upper, b.Lower)
	fmt.Printf("cone slope beta* = %.4f, expansion factor = %.4f\n\n", b.Beta, b.Expansion)

	// A target hides at x = 7.5. SearchTime is the worst case over
	// every possible fault assignment.
	const target = 7.5
	worst, err := s.SearchTime(target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("target at x = %g: found within t = %.4f (ratio %.4f)\n", target, worst, worst/target)

	// The adversary's best move is to corrupt the earliest visitors.
	faulty := s.WorstFaultSet(target)
	fmt.Printf("worst-case faulty robot(s): %v\n\n", faulty)

	// Replay the search as an event log.
	events, err := s.Timeline(target, faulty, worst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("event timeline:")
	for _, e := range events {
		fmt.Printf("  t=%-10.4f robot %d %-7s x=%.4f\n", e.T, e.Robot, e.Kind, e.X)
	}
}
