// Pfaulty: query a running linesearchd for expected search times under
// the probabilistic fault model. Detection is a coin: every surviving
// robot misses each visit of the target independently with probability
// p, so the worst case is meaningless (+Inf for any p > 0) and the
// figure of merit becomes the expected detection time, served by
// GET /v1/searchtime?objective=expected.
//
// The example walks three views of that objective:
//
//  1. the half-line pfaulty family under its own coin — expected time
//     against target distance, converging to the asymptotic ratio;
//  2. a p-sweep over a crash strategy (doubling), showing the
//     expectation grow with p until the series diverges and the
//     service reports the target as undetectable;
//  3. a growth-factor comparison at fixed p — the family's tuned
//     default excursion growth against detuned choices.
//
// Start a daemon first:
//
//	go run ./cmd/linesearchd -addr :8080
//	go run ./examples/pfaulty -addr http://localhost:8080
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/url"
)

// searchTime is the subset of the /v1/searchtime response the example
// reads; Time is nil when the expectation diverges.
type searchTime struct {
	Strategy string   `json:"strategy"`
	Time     *float64 `json:"time"`
	Ratio    *float64 `json:"ratio"`
	Detected bool     `json:"detected"`
	Error    string   `json:"error"`
}

func query(addr string, params url.Values) searchTime {
	resp, err := http.Get(addr + "/v1/searchtime?" + params.Encode())
	if err != nil {
		log.Fatalf("query (is linesearchd running at %s?): %v", addr, err)
	}
	defer resp.Body.Close()
	var st searchTime
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatalf("decode: %v", err)
	}
	if st.Error != "" {
		log.Fatalf("searchtime %v: %s", params, st.Error)
	}
	return st
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "linesearchd base URL")
	flag.Parse()

	// 1. The half-line family: three robots, one crash, the survivors
	// flip a p=0.5 coin at every visit. The expected ratio E[T]/x
	// approaches the family's asymptote as the target recedes.
	fmt.Println("pfaulty:0.5 half-line family (n=3, f=1), expected detection time:")
	for _, x := range []float64{2, 8, 32, 128, 512} {
		st := query(*addr, url.Values{
			"n": {"3"}, "f": {"1"}, "strategy": {"pfaulty:0.5"},
			"x": {fmt.Sprint(x)}, "objective": {"expected"},
		})
		fmt.Printf("  x=%-6g E[T]=%-12.4f E[T]/x=%.4f\n", x, *st.Time, *st.Ratio)
	}

	// 2. p-sweep over the doubling baseline: the two survivors share
	// one trajectory and visit together, so the collective coin is p^2
	// and the expectation diverges once (p^2)^2 * 2 reaches 1 — the
	// service answers detected=false instead of truncating a lie.
	fmt.Println("\ndoubling (n=3, f=1) at x=16 under increasing miss probability:")
	for _, p := range []string{"0", "0.2", "0.4", "0.6", "0.8", "0.9"} {
		st := query(*addr, url.Values{
			"n": {"3"}, "f": {"1"}, "strategy": {"doubling"},
			"x": {"16"}, "objective": {"expected"}, "p": {p},
		})
		if !st.Detected {
			fmt.Printf("  p=%-4s expectation diverges (excursion growth outruns the coin)\n", p)
			continue
		}
		fmt.Printf("  p=%-4s E[T]=%-12.4f E[T]/x=%.4f\n", p, *st.Time, *st.Ratio)
	}

	// 3. Excursion growth at p=0.6: the bare family name tunes gamma to
	// minimise the asymptotic expected ratio for the collective coin
	// (at any single finite target the ratio oscillates with the
	// excursion phase, so adjacent growths can trade places). Growth
	// approaching 1/P^2 makes the series diverge — or converge too
	// slowly for the estimator to certify, which the service reports
	// as detected=false rather than truncating a lie.
	fmt.Println("\ngrowth-factor comparison at p=0.6 (n=3, f=1, x=64):")
	for _, name := range []string{"pfaulty:0.6", "pfaulty:0.6:1.5", "pfaulty:0.6:2.5", "pfaulty:0.6:4", "pfaulty:0.6:6"} {
		st := query(*addr, url.Values{
			"n": {"3"}, "f": {"1"}, "strategy": {name},
			"x": {"64"}, "objective": {"expected"},
		})
		if !st.Detected {
			fmt.Printf("  %-16s expectation not certified finite\n", name)
			continue
		}
		fmt.Printf("  %-16s E[T]/x=%.4f\n", st.Strategy, *st.Ratio)
	}
}
