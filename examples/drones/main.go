// Drones: a pipeline-inspection scenario. A leak sits at an unknown
// point along a pipeline; a fleet of drones sweeps from the access shaft
// in both directions. Each drone's gas sensor may silently be broken —
// a faulty drone flies its route but never raises the alarm — so the
// leak is confirmed only when a drone with a working sensor passes it.
//
// This is exactly the paper's model: the fleet needs a schedule whose
// worst-case confirmation time is small relative to the leak's distance,
// no matter which sensors are broken. The example contrasts:
//
//   - the worst case (an adversary breaks the sensors of the first f
//     drones to reach the leak) with
//   - the average case (sensors break at random), via Monte Carlo, and
//   - the paper's schedule A(5, 2) with the naive "fly in one pack"
//     doubling baseline.
package main

import (
	"fmt"
	"log"
	"math"

	"linesearch"
)

const (
	drones        = 5
	brokenSensors = 2
	leakAt        = 130.0 // metres from the access shaft, direction unknown
	mcTrials      = 20000
	mcSeed        = 2016
)

func main() {
	fleet, err := linesearch.New(drones, brokenSensors)
	if err != nil {
		log.Fatal(err)
	}
	pack, err := linesearch.NewWithStrategy("doubling", drones, brokenSensors)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("pipeline inspection: %d drones, up to %d broken sensors, leak at %.0f m\n\n", drones, brokenSensors, leakAt)

	report("paper schedule A(5,2)", fleet)
	report("single-pack doubling", pack)

	// Random sensor failures: how bad is a typical day vs the worst day?
	fmt.Println("Monte Carlo, random broken sensors, random leak position:")
	for _, fl := range []struct {
		name string
		s    *linesearch.Searcher
	}{
		{"A(5,2)", fleet},
		{"doubling pack", pack},
	} {
		stats, err := fl.s.MonteCarlo(mcTrials, mcSeed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s mean %.3f  median %.3f  p95 %.3f  p99 %.3f  max %.3f  (x distance)\n",
			fl.name, stats.Mean, stats.Median, stats.P95, stats.P99, stats.Max)
	}
	fmt.Println("\nthe pack confirms every leak at the same ratio (everyone passes together);")
	fmt.Println("A(5,2) spreads the drones out and wins both on average and in the worst case.")
}

func report(name string, s *linesearch.Searcher) {
	cr, err := s.CompetitiveRatio()
	if err != nil {
		log.Fatal(err)
	}
	worst, err := s.SearchTime(leakAt)
	if err != nil {
		log.Fatal(err)
	}
	faulty := s.WorstFaultSet(leakAt)
	lucky, err := s.DetectionTime(leakAt, nil) // all sensors fine
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s:\n", name)
	fmt.Printf("  guarantee: leak confirmed within %.2f x its distance, whatever fails\n", cr)
	fmt.Printf("  leak at %.0f m: worst case %.0f m of flying (sensors %v broken), all-healthy case %.0f m\n\n",
		leakAt, worst, faulty, math.Ceil(lucky))
}
