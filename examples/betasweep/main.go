// Betasweep: the ablation behind Theorem 1. The proportional schedule
// S_beta(n) works for any cone slope beta > 1; the paper's contribution
// is choosing beta* = (4f+4)/n - 1. This example sweeps beta for
// A(3, 1), measuring the competitive ratio of each realised schedule
// with the simulator, and shows the measured minimum landing exactly on
// beta* with the Theorem 1 value.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"linesearch"
)

const (
	n, f      = 3, 1
	sweepLo   = 1.05
	sweepHi   = 4.0
	sweepStep = 0.05
)

func main() {
	b, err := linesearch.Bounds(n, f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sweep of the cone slope beta for A(%d, %d)\n", n, f)
	fmt.Printf("theory: beta* = %.4f with CR = %.4f\n\n", b.Beta, b.Upper)

	bestBeta, bestCR := math.NaN(), math.Inf(1)
	fmt.Printf("%8s  %12s  %s\n", "beta", "measured CR", "")
	for beta := sweepLo; beta <= sweepHi+1e-9; beta += sweepStep {
		s, err := linesearch.NewWithStrategy(fmt.Sprintf("cone:%g", beta), n, f)
		if err != nil {
			log.Fatal(err)
		}
		cr, _, err := s.MeasureCR()
		if err != nil {
			log.Fatal(err)
		}
		if cr < bestCR {
			bestBeta, bestCR = beta, cr
		}
		// A coarse inline bar makes the valley visible in the terminal.
		bar := strings.Repeat("#", int(math.Min(60, (cr-5)*12)))
		fmt.Printf("%8.2f  %12.4f  %s\n", beta, cr, bar)
	}

	fmt.Printf("\nmeasured minimum: beta = %.2f with CR = %.4f\n", bestBeta, bestCR)
	fmt.Printf("theory optimum:   beta = %.4f with CR = %.4f\n", b.Beta, b.Upper)
	if math.Abs(bestBeta-b.Beta) <= sweepStep {
		fmt.Println("=> the sweep bottoms out at beta*, as Theorem 1 predicts")
	} else {
		fmt.Println("=> UNEXPECTED: measured optimum disagrees with Theorem 1")
	}
}
