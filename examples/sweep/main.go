// Sweep: drive linesearchd's background job API end to end. The
// example submits a (n, f, beta) grid to POST /v1/sweeps, polls
// GET /v1/sweeps/{id} until the job finishes (printing progress as it
// goes), fetches the dataset from .../result, and renders the measured
// competitive-ratio grid per strategy — the service-side version of
// what `linesweep` computes locally.
//
// Start a daemon first:
//
//	go run ./cmd/linesearchd -addr :8080
//	go run ./examples/sweep -addr http://localhost:8080
//
// Submitting the same spec twice is idempotent, and resubmitting after
// a daemon restart resumes from the job's checkpoint — rerun this
// example against a bounced daemon to see `resumed: true`.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"
)

// spec is the submitted grid: every (n, f) regime of Table 1 under the
// paper's recommended strategy plus one deliberately detuned cone.
const spec = `{
  "name": "example",
  "n": [2, 3, 4, 5, 6, 7, 8],
  "f": [1, 2, 3],
  "strategies": ["auto"],
  "betas": [2.5],
  "xmax": 200
}`

func main() {
	addr := flag.String("addr", "http://localhost:8080", "linesearchd base URL")
	flag.Parse()

	// Submit. 202 means the job runs in the background from here on.
	resp, err := http.Post(*addr+"/v1/sweeps", "application/json", bytes.NewReader([]byte(spec)))
	if err != nil {
		log.Fatalf("submit (is linesearchd running at %s?): %v", *addr, err)
	}
	var sub struct {
		ID         string `json:"id"`
		TotalCells int    `json:"total_cells"`
		Resumed    bool   `json:"resumed"`
	}
	if err := decode(resp, &sub); err != nil {
		log.Fatalf("submit: %v", err)
	}
	fmt.Printf("submitted sweep %s: %d cells, resumed: %v\n", sub.ID, sub.TotalCells, sub.Resumed)

	// Poll until terminal.
	for {
		resp, err := http.Get(*addr + "/v1/sweeps/" + sub.ID)
		if err != nil {
			log.Fatalf("status: %v", err)
		}
		var st struct {
			State      string `json:"state"`
			DoneCells  int    `json:"done_cells"`
			TotalCells int    `json:"total_cells"`
			CellErrors int    `json:"cell_errors"`
			Error      string `json:"error"`
		}
		if err := decode(resp, &st); err != nil {
			log.Fatalf("status: %v", err)
		}
		fmt.Printf("  %s: %d/%d cells (%d cell errors)\n", st.State, st.DoneCells, st.TotalCells, st.CellErrors)
		switch st.State {
		case "done":
		case "failed", "cancelled":
			log.Fatalf("sweep %s: %s %s", sub.ID, st.State, st.Error)
		default:
			time.Sleep(200 * time.Millisecond)
			continue
		}
		break
	}

	// Fetch the dataset and pivot it into one CR grid per strategy.
	resp, err = http.Get(*addr + "/v1/sweeps/" + sub.ID + "/result")
	if err != nil {
		log.Fatalf("result: %v", err)
	}
	var res struct {
		Strategies []string `json:"strategies"`
		Dataset    struct {
			Columns []string     `json:"columns"`
			Rows    [][]*float64 `json:"rows"`
		} `json:"dataset"`
	}
	if err := decode(resp, &res); err != nil {
		log.Fatalf("result: %v", err)
	}
	col := map[string]int{}
	for i, c := range res.Dataset.Columns {
		col[c] = i
	}
	type key struct {
		sid, n, f int
	}
	cr := map[key]float64{}
	var ns, fs []int
	seenN, seenF := map[int]bool{}, map[int]bool{}
	for _, row := range res.Dataset.Rows {
		if row[col["empirical_cr"]] == nil {
			continue
		}
		k := key{
			sid: int(*row[col["strategy_id"]]),
			n:   int(*row[col["n"]]),
			f:   int(*row[col["f"]]),
		}
		cr[k] = *row[col["empirical_cr"]]
		if !seenN[k.n] {
			seenN[k.n] = true
			ns = append(ns, k.n)
		}
		if !seenF[k.f] {
			seenF[k.f] = true
			fs = append(fs, k.f)
		}
	}

	for sid, name := range res.Strategies {
		fmt.Printf("\nmeasured competitive ratio, strategy %q (n down, f across):\n", name)
		fmt.Printf("%6s", "n\\f")
		for _, f := range fs {
			fmt.Printf("%10d", f)
		}
		fmt.Println()
		for _, n := range ns {
			fmt.Printf("%6d", n)
			for _, f := range fs {
				if v, ok := cr[key{sid, n, f}]; ok {
					fmt.Printf("%10.4f", v)
				} else {
					fmt.Printf("%10s", "-") // infeasible cell (n <= f, or out of regime)
				}
			}
			fmt.Println()
		}
	}
}

// decode reads a JSON response, treating non-2xx statuses as errors.
func decode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, e.Error)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
