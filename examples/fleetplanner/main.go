// Fleetplanner: inverse design with the closed forms. Instead of asking
// "what ratio do n robots with f faults achieve?", a fleet operator asks
// the reverse questions:
//
//   - I must tolerate f sensor failures and my SLA allows detection
//     within maxCR times the target distance — how many robots do I buy?
//   - I own n robots — how many failures can I absorb within the SLA?
//
// Both answers come straight from Theorem 1's monotone closed form, and
// the planner prints the full trade-off table. It also shows the
// WithMinDistance option: when the target is known to be at least some
// distance away, the schedule is dilated so no time is wasted nearby.
package main

import (
	"fmt"
	"log"

	"linesearch"
)

func main() {
	fmt.Println("fleet sizes required to tolerate f faults within a competitive-ratio SLA")
	fmt.Printf("%6s", "f \\ CR")
	slas := []float64{9, 7, 5, 4, 3.5, 3.2}
	for _, sla := range slas {
		fmt.Printf("%8.1f", sla)
	}
	fmt.Println()
	for f := 1; f <= 8; f++ {
		fmt.Printf("%6d", f)
		for _, sla := range slas {
			n, err := linesearch.RobotsNeeded(f, sla)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%8d", n)
		}
		fmt.Println()
	}

	fmt.Println("\nfaults tolerable by a fixed fleet within the same SLAs")
	fmt.Printf("%6s", "n \\ CR")
	for _, sla := range slas {
		fmt.Printf("%8.1f", sla)
	}
	fmt.Println()
	for n := 2; n <= 9; n++ {
		fmt.Printf("%6d", n)
		for _, sla := range slas {
			f, err := linesearch.FaultsTolerable(n, sla)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%8d", f)
		}
		fmt.Println()
	}

	// Reading the tables: tolerating more faults at a tighter SLA costs
	// robots superlinearly until the trivial regime (n = 2f+2) caps it.
	fmt.Println("\nexample decision: SLA = 4.5x, must tolerate 2 faults")
	n, err := linesearch.RobotsNeeded(2, 4.5)
	if err != nil {
		log.Fatal(err)
	}
	s, err := linesearch.NewSearcher(n, 2, linesearch.WithMinDistance(50))
	if err != nil {
		log.Fatal(err)
	}
	cr, err := s.CompetitiveRatio()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=> buy %d robots, run %s scaled for targets >= 50 m: guaranteed %.3fx\n", n, s.Strategy(), cr)
	within, err := s.SearchTime(200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   a target at 200 m is confirmed within %.0f m of travel\n", within)
}
